// Prefix-equivalence and unit tests for the streaming counting subsystem
// (hypergraph/dynamic.h, hypergraph/temporal_trace.h, motif/streaming.h).
//
// The load-bearing property: after EVERY arrival *and removal* of a
// random interleaving, StreamingEngine's 26-motif count vector must be
// BIT-identical to recounting a frozen snapshot of the same edge
// multiset from scratch with the retained oracle kernel
// (reference::CountMotifsExact). Counts are integers, so the
// comparisons use EXPECT_EQ, not tolerances. Schedules cover skewed
// edge sizes, exact duplicate arrivals, removal-heavy churn, sliding
// windows and multiple engine thread counts.
//
// Seed reproduction: the randomized tests draw their schedules from
// testing::RandomDynamicSchedule / RandomTrace, which are pure
// functions of their arguments. A failure message names the op index
// and prefix; to reproduce, rerun the test (the seeds are compiled-in
// constants, so the same binary always replays the same schedule), or
// paste the generator call with the test's seed into a scratch test to
// shrink it. Nothing in the suite depends on time, thread timing or
// iteration order of unordered containers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "gen/temporal.h"
#include "hypergraph/builder.h"
#include "hypergraph/dynamic.h"
#include "hypergraph/projection.h"
#include "hypergraph/temporal_trace.h"
#include "motif/reference.h"
#include "motif/streaming.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

void ExpectBitIdentical(const MotifCounts& got, const MotifCounts& want,
                        const std::string& label) {
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(got[t], want[t]) << label << ": motif " << t;
  }
}

MotifCounts OracleCounts(const Hypergraph& graph) {
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  return reference::CountMotifsExact(graph, projection, 1);
}

/// Random arrival trace with heavily skewed edge sizes and ~1 in 4
/// arrivals repeating an earlier edge verbatim (duplicates reach the
/// delta pass exactly as they reach the static kernels when null models
/// disable dedup). Timestamps advance by 0..2 per arrival so windows see
/// bursts and gaps.
TemporalTrace RandomTrace(size_t num_nodes, size_t num_arrivals,
                          size_t max_size, uint64_t seed) {
  Rng rng(seed);
  TemporalTrace trace;
  uint64_t time = 0;
  for (size_t i = 0; i < num_arrivals; ++i) {
    time += rng.UniformInt(3);
    TimedEdge arrival;
    arrival.time = time;
    if (!trace.empty() && rng.UniformInt(4) == 0) {
      arrival.nodes = trace.arrivals[rng.UniformInt(trace.size())].nodes;
    } else {
      // Zipf-skewed size in [1, max_size]: mostly small, occasional hubs.
      const size_t size = std::min<uint64_t>(rng.Zipf(max_size, 1.2) + 1,
                                             num_nodes);
      const auto ids = rng.SampleDistinct(num_nodes, size);
      arrival.nodes.assign(ids.begin(), ids.end());
    }
    trace.arrivals.push_back(std::move(arrival));
  }
  return trace;
}

// ---------------------------------------------------------------------
// DynamicHypergraph

TEST(DynamicHypergraphTest, MatchesStaticBuildAndProjection) {
  const TemporalTrace trace = RandomTrace(30, 80, 8, 17);
  DynamicHypergraph dynamic;
  HypergraphBuilder builder;
  for (const TimedEdge& arrival : trace.arrivals) {
    ASSERT_TRUE(dynamic
                    .AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                                     arrival.nodes.size()))
                    .ok());
    builder.AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                            arrival.nodes.size()));
  }
  BuildOptions options;
  options.dedup_edges = false;
  const Hypergraph want = std::move(builder).Build(options).value();

  ASSERT_EQ(dynamic.num_edges(), want.num_edges());
  EXPECT_EQ(dynamic.num_nodes(), want.num_nodes());
  EXPECT_EQ(dynamic.num_pins(), want.num_pins());
  for (EdgeId e = 0; e < want.num_edges(); ++e) {
    const auto got = dynamic.edge(e);
    const auto exp = want.edge(e);
    ASSERT_EQ(got.size(), exp.size()) << "edge " << e;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), exp.begin()))
        << "edge " << e;
  }
  for (NodeId v = 0; v < want.num_nodes(); ++v) {
    const auto got = dynamic.edges_of(v);
    const auto exp = want.edges_of(v);
    ASSERT_EQ(got.size(), exp.size()) << "node " << v;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), exp.begin()))
        << "node " << v;
  }

  // The incrementally maintained adjacency must equal a from-scratch
  // projection build: same neighbor sets, weights, order and totals.
  const auto projection = ProjectedGraph::Build(want, 1).value();
  EXPECT_EQ(dynamic.num_wedges(), projection.num_wedges());
  EXPECT_EQ(dynamic.total_weight(), projection.total_weight());
  for (EdgeId e = 0; e < want.num_edges(); ++e) {
    const auto got = dynamic.neighbors(e);
    const auto exp = projection.neighbors(e);
    ASSERT_EQ(got.size(), exp.size()) << "neighbors of " << e;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].edge, exp[i].edge) << "neighbor " << i << " of " << e;
      EXPECT_EQ(got[i].weight, exp[i].weight)
          << "weight of neighbor " << i << " of " << e;
    }
  }
}

TEST(DynamicHypergraphTest, SnapshotEqualsStaticBuild) {
  DynamicHypergraph dynamic;
  // Unsorted members with within-edge duplicates, plus one exact
  // duplicate edge: both normalizations must match the builder's.
  ASSERT_TRUE(dynamic.AddEdge({5, 1, 3, 1}).ok());
  ASSERT_TRUE(dynamic.AddEdge({2, 5}).ok());
  ASSERT_TRUE(dynamic.AddEdge({1, 3, 5}).ok());
  const Hypergraph snapshot = dynamic.Snapshot().value();
  EXPECT_EQ(snapshot.num_edges(), 3u);  // duplicates retained
  EXPECT_EQ(snapshot.num_nodes(), 6u);
  EXPECT_TRUE(snapshot.Validate().ok());
  const auto first = snapshot.edge(0);
  EXPECT_EQ(first.size(), 3u);  // {1, 3, 5}
  EXPECT_EQ(first[0], 1u);
  EXPECT_EQ(first[2], 5u);
}

TEST(DynamicHypergraphTest, RemoveEdgeReversesEveryStructure) {
  const TemporalTrace trace = RandomTrace(25, 60, 7, 19);
  DynamicHypergraph dynamic;
  std::vector<EdgeId> ids;
  for (const TimedEdge& arrival : trace.arrivals) {
    ids.push_back(dynamic
                      .AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                                       arrival.nodes.size()))
                      .value());
  }
  // Remove every third edge, oldest first.
  std::vector<bool> removed(ids.size(), false);
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(dynamic.RemoveEdge(ids[i]).ok());
    removed[i] = true;
  }
  EXPECT_EQ(dynamic.num_edges(), ids.size());  // id space keeps tombstones
  EXPECT_EQ(dynamic.num_live_edges(), ids.size() - (ids.size() + 2) / 3);

  // The survivor graph must equal a from-scratch build of the survivors:
  // same incidence, same projection (weights, order, totals).
  HypergraphBuilder builder;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!removed[i]) builder.AddEdge(dynamic.edge(ids[i]));
  }
  BuildOptions options;
  options.dedup_edges = false;
  options.num_nodes = dynamic.num_nodes();
  const Hypergraph want = std::move(builder).Build(options).value();
  const auto projection = ProjectedGraph::Build(want, 1).value();
  EXPECT_EQ(dynamic.num_wedges(), projection.num_wedges());
  EXPECT_EQ(dynamic.total_weight(), projection.total_weight());
  EXPECT_EQ(dynamic.num_pins(), want.num_pins());
  EdgeId compact = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (removed[i]) {
      EXPECT_FALSE(dynamic.is_live(ids[i]));
      EXPECT_EQ(dynamic.projected_degree(ids[i]), 0u);
      continue;
    }
    const auto got = dynamic.neighbors(ids[i]);
    const auto exp = projection.neighbors(compact);
    ASSERT_EQ(got.size(), exp.size()) << "neighbors of live edge " << i;
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].weight, exp[k].weight)
          << "weight of neighbor " << k << " of live edge " << i;
    }
    ++compact;
  }

  // Snapshot contains exactly the survivors, in id order.
  const Hypergraph snapshot = dynamic.Snapshot().value();
  ASSERT_EQ(snapshot.num_edges(), want.num_edges());
  for (EdgeId e = 0; e < want.num_edges(); ++e) {
    const auto got = snapshot.edge(e);
    const auto exp = want.edge(e);
    ASSERT_EQ(got.size(), exp.size()) << "snapshot edge " << e;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), exp.begin()))
        << "snapshot edge " << e;
  }
}

TEST(DynamicHypergraphTest, RemoveEdgeRejectsBadIds) {
  DynamicHypergraph dynamic;
  EXPECT_FALSE(dynamic.RemoveEdge(0).ok());  // empty graph
  const EdgeId e = dynamic.AddEdge({0, 1, 2}).value();
  EXPECT_FALSE(dynamic.RemoveEdge(e + 1).ok());  // out of range
  ASSERT_TRUE(dynamic.RemoveEdge(e).ok());
  EXPECT_FALSE(dynamic.RemoveEdge(e).ok());  // already removed
  EXPECT_EQ(dynamic.num_live_edges(), 0u);
  EXPECT_EQ(dynamic.num_pins(), 0u);
  // Tombstoned ids are never reused: a later arrival gets a fresh id.
  EXPECT_EQ(dynamic.AddEdge({3, 4}).value(), e + 1);
}

TEST(DynamicHypergraphTest, RejectsEmptyEdgeAndGrowsNodes) {
  DynamicHypergraph dynamic;
  EXPECT_FALSE(dynamic.AddEdge(std::span<const NodeId>()).ok());
  EXPECT_EQ(dynamic.num_edges(), 0u);
  ASSERT_TRUE(dynamic.AddEdge({0, 1}).ok());
  EXPECT_EQ(dynamic.num_nodes(), 2u);
  ASSERT_TRUE(dynamic.AddEdge({100}).ok());
  EXPECT_EQ(dynamic.num_nodes(), 101u);  // ids below the max exist too
  EXPECT_EQ(dynamic.degree(50), 0u);
  dynamic.Clear();
  EXPECT_EQ(dynamic.num_edges(), 0u);
  EXPECT_EQ(dynamic.num_nodes(), 0u);
  EXPECT_EQ(dynamic.num_wedges(), 0u);
}

// ---------------------------------------------------------------------
// StreamingEngine: prefix equivalence

TEST(StreamingEngineTest, EveryPrefixMatchesOracleRecount) {
  // The acceptance property, on a duplicate-heavy skewed trace: exact
  // counts after every single arrival, against the frozen oracle.
  const TemporalTrace trace = RandomTrace(35, 110, 9, 29);
  StreamingEngine engine;
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto& nodes = trace.arrivals[i].nodes;
    ASSERT_TRUE(
        engine.AddEdge(std::span<const NodeId>(nodes.data(), nodes.size()))
            .ok());
    const Hypergraph snapshot = engine.graph().Snapshot().value();
    ExpectBitIdentical(engine.counts(), OracleCounts(snapshot),
                       "prefix " + std::to_string(i + 1));
  }
  EXPECT_EQ(engine.stats().arrivals, trace.size());
  EXPECT_GT(engine.stats().new_instances, 0u);
}

TEST(StreamingEngineTest, PrefixCountsMatchBruteForce) {
  // Absolute correctness on a small trace, not just agreement with the
  // projected-graph kernels.
  const TemporalTrace trace = RandomTrace(18, 45, 6, 43);
  StreamingEngine engine;
  for (const TimedEdge& arrival : trace.arrivals) {
    ASSERT_TRUE(engine
                    .AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                                     arrival.nodes.size()))
                    .ok());
  }
  const Hypergraph snapshot = engine.graph().Snapshot().value();
  ExpectBitIdentical(engine.counts(), testing::BruteForceCounts(snapshot),
                     "brute-force");
}

TEST(StreamingEngineTest, BitIdenticalAtEveryThreadCount) {
  const TemporalTrace trace = RandomTrace(40, 150, 10, 53);
  MotifCounts want;
  bool first = true;
  for (const size_t threads : {size_t{1}, size_t{2}, DefaultThreadCount()}) {
    StreamingOptions options;
    options.num_threads = threads;
    options.parallel_work_threshold = 1;  // force fan-out on every arrival
    StreamingEngine engine(options);
    for (const TimedEdge& arrival : trace.arrivals) {
      ASSERT_TRUE(engine
                      .AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                                       arrival.nodes.size()))
                      .ok());
    }
    if (first) {
      want = engine.counts();
      first = false;
      const Hypergraph snapshot = engine.graph().Snapshot().value();
      ExpectBitIdentical(want, OracleCounts(snapshot), "threads=1 vs oracle");
    } else {
      ExpectBitIdentical(engine.counts(), want,
                         "threads=" + std::to_string(threads));
    }
  }
}

TEST(StreamingEngineTest, ZeroThreadsMeansDefaultThreadCount) {
  StreamingOptions options;
  options.num_threads = 0;
  StreamingEngine engine(options);
  EXPECT_EQ(engine.stats().num_threads, DefaultThreadCount());
  ASSERT_TRUE(engine.AddEdge({0, 1, 2}).ok());
  ASSERT_TRUE(engine.AddEdge({0, 3, 1}).ok());
  ASSERT_TRUE(engine.AddEdge({4, 5, 0}).ok());
  ASSERT_TRUE(engine.AddEdge({6, 7, 2}).ok());
  // Figure 2 golden vector: motifs 10, 21, 22 exactly once each.
  MotifCounts want;
  want[10] = 1.0;
  want[21] = 1.0;
  want[22] = 1.0;
  ExpectBitIdentical(engine.counts(), want, "figure-2 streamed");
}

TEST(StreamingEngineTest, DuplicateArrivalsCreateNoPhantomInstances) {
  StreamingEngine engine;
  ASSERT_TRUE(engine.AddEdge({0, 1, 2}).ok());
  ASSERT_TRUE(engine.AddEdge({0, 1, 2}).ok());  // exact duplicate
  ASSERT_TRUE(engine.AddEdge({0, 1, 2}).ok());  // and again
  EXPECT_EQ(engine.counts().Total(), 0.0);  // triples of duplicates: id 0
  ASSERT_TRUE(engine.AddEdge({2, 3}).ok());
  const Hypergraph snapshot = engine.graph().Snapshot().value();
  ExpectBitIdentical(engine.counts(), OracleCounts(snapshot), "duplicates");
}

// ---------------------------------------------------------------------
// StreamingEngine: decremental counting

TEST(StreamingEngineTest, RemoveEdgeMatchesOracleAfterEveryRemoval) {
  // Ingest a trace, then peel edges off in a scrambled order, checking
  // the counts against a fresh oracle recount after every removal, all
  // the way down to the empty graph (which must read exactly zero).
  const TemporalTrace trace = RandomTrace(28, 70, 8, 131);
  StreamingEngine engine;
  std::vector<EdgeId> ids;
  for (const TimedEdge& arrival : trace.arrivals) {
    ids.push_back(engine
                      .AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                                       arrival.nodes.size()))
                      .value());
  }
  Rng rng(131);
  rng.Shuffle(ids);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(engine.RemoveEdge(ids[i]).ok());
    const Hypergraph snapshot = engine.graph().Snapshot().value();
    ExpectBitIdentical(engine.counts(), OracleCounts(snapshot),
                       "after removal " + std::to_string(i + 1));
  }
  EXPECT_EQ(engine.graph().num_live_edges(), 0u);
  EXPECT_EQ(engine.counts().Total(), 0.0);
  EXPECT_EQ(engine.stats().removals, trace.size());
  EXPECT_EQ(engine.stats().new_instances, engine.stats().removed_instances);
}

TEST(StreamingEngineTest, RemoveEdgeRejectsBadIds) {
  StreamingEngine engine;
  EXPECT_FALSE(engine.RemoveEdge(0).ok());
  const EdgeId e = engine.AddEdge({0, 1, 2}).value();
  EXPECT_FALSE(engine.RemoveEdge(e + 5).ok());
  ASSERT_TRUE(engine.RemoveEdge(e).ok());
  EXPECT_FALSE(engine.RemoveEdge(e).ok());
  EXPECT_EQ(engine.stats().removals, 1u);
}

// The PR's acceptance property: a 1000-op random add/remove
// interleaving, counts bit-identical to the oracle after EVERY prefix,
// at thread counts 1, 2 and DefaultThreadCount(). The multi-threaded
// engines run in lockstep with the threads=1 engine and must agree
// bitwise after every op; the threads=1 engine is compared against the
// oracle recount, which transitively pins all three to it while paying
// the O(graph) recount once per prefix. Reproduce with seed 227 (see
// the file header for the workflow).
TEST(StreamingEngineTest, RandomInterleavingMatchesOracleAtEveryPrefix) {
  constexpr uint64_t kSeed = 227;
  const std::vector<testing::DynamicOp> schedule =
      testing::RandomDynamicSchedule(/*num_ops=*/1000, /*num_nodes=*/26,
                                     /*max_edge_size=*/7,
                                     /*remove_ratio=*/0.45,
                                     /*query_ratio=*/0.0, kSeed);

  StreamingOptions forced;
  forced.parallel_work_threshold = 1;  // fan out on every update
  std::vector<StreamingEngine> engines;
  engines.emplace_back(StreamingOptions{});  // threads = 1
  forced.num_threads = 2;
  engines.emplace_back(forced);
  forced.num_threads = DefaultThreadCount();
  engines.emplace_back(forced);

  std::vector<EdgeId> live;  // engine ids of live edges, insertion order
  for (size_t i = 0; i < schedule.size(); ++i) {
    const testing::DynamicOp& op = schedule[i];
    if (op.kind == testing::DynamicOp::Kind::kAdd) {
      EdgeId id = 0;
      for (size_t k = 0; k < engines.size(); ++k) {
        auto added = engines[k].AddEdge(
            std::span<const NodeId>(op.nodes.data(), op.nodes.size()));
        ASSERT_TRUE(added.ok()) << "op " << i << " engine " << k;
        // Ids are assigned by arrival order, so all engines agree.
        if (k == 0) id = added.value();
        ASSERT_EQ(added.value(), id) << "op " << i << " engine " << k;
      }
      live.push_back(id);
    } else if (op.kind == testing::DynamicOp::Kind::kRemove) {
      ASSERT_LT(op.remove_index, live.size()) << "op " << i;
      const EdgeId id = live[op.remove_index];
      live.erase(live.begin() + static_cast<ptrdiff_t>(op.remove_index));
      for (size_t k = 0; k < engines.size(); ++k) {
        ASSERT_TRUE(engines[k].RemoveEdge(id).ok())
            << "op " << i << " engine " << k;
      }
    }
    const Hypergraph snapshot = engines[0].graph().Snapshot().value();
    ASSERT_EQ(snapshot.num_edges(), live.size()) << "op " << i;
    ExpectBitIdentical(engines[0].counts(), OracleCounts(snapshot),
                       "prefix " + std::to_string(i + 1) + " (seed 227)");
    for (size_t k = 1; k < engines.size(); ++k) {
      ExpectBitIdentical(engines[k].counts(), engines[0].counts(),
                         "prefix " + std::to_string(i + 1) + " engine " +
                             std::to_string(k) + " (seed 227)");
    }
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }

  // Drain-down sweep: remove the remaining live edges one by one; the
  // reverse deltas must walk the counts exactly back to all-zero.
  while (!live.empty()) {
    const EdgeId id = live.back();
    live.pop_back();
    for (StreamingEngine& engine : engines) {
      ASSERT_TRUE(engine.RemoveEdge(id).ok());
    }
    ExpectBitIdentical(engines[1].counts(), engines[0].counts(), "drain");
    ExpectBitIdentical(engines[2].counts(), engines[0].counts(), "drain");
  }
  for (const StreamingEngine& engine : engines) {
    EXPECT_EQ(engine.counts().Total(), 0.0);
    EXPECT_EQ(engine.graph().num_live_edges(), 0u);
  }
}

// ---------------------------------------------------------------------
// ShardedStreamingEngine: multi-producer ingest

TEST(ShardedStreamingEngineTest, ConcurrentProducersMatchOracle) {
  // k producer threads blast disjoint slices of one trace into their
  // own shards while a drainer thread folds staged arrivals into the
  // engine mid-flight. After the final drain the counts must be
  // bit-identical to the oracle recount — the multiset of applied edges
  // is schedule-independent even though the interleaving is not.
  const TemporalTrace trace = RandomTrace(32, 120, 8, 167);
  constexpr size_t kProducers = 4;
  ShardedStreamingEngine sharded(kProducers);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < trace.size(); i += kProducers) {
        const auto& nodes = trace.arrivals[i].nodes;
        ASSERT_TRUE(sharded
                        .Submit(p, std::span<const NodeId>(nodes.data(),
                                                           nodes.size()))
                        .ok());
      }
    });
  }
  std::thread drainer([&] {
    for (int round = 0; round < 8; ++round) sharded.Drain();
  });
  for (std::thread& t : producers) t.join();
  drainer.join();

  const Hypergraph snapshot = sharded.Snapshot().value();  // drains first
  EXPECT_EQ(snapshot.num_edges(), trace.size());
  ExpectBitIdentical(sharded.Counts(), OracleCounts(snapshot),
                     "sharded vs oracle");
  EXPECT_EQ(sharded.Stats().arrivals, trace.size());
  EXPECT_EQ(sharded.dropped_submissions(), 0u);

  // Per-shard delta vectors are mergeable: they sum bit-exactly to the
  // total, and every shard that applied an instance-creating arrival
  // contributed its own exact share.
  MotifCounts merged;
  for (size_t p = 0; p < kProducers; ++p) merged += sharded.ShardDelta(p);
  ExpectBitIdentical(merged, sharded.Counts(), "shard deltas sum");
}

TEST(ShardedStreamingEngineTest, RejectsBadShardAndDropsBadEdges) {
  ShardedStreamingEngine sharded(2);
  EXPECT_FALSE(sharded.Submit(2, {0, 1}).ok());  // shard out of range
  ASSERT_TRUE(sharded.Submit(0, {0, 1, 2}).ok());
  ASSERT_TRUE(sharded.Submit(1, std::span<const NodeId>()).ok());  // staged...
  EXPECT_EQ(sharded.Drain(), 1u);  // ...but dropped at the linearization point
  EXPECT_EQ(sharded.dropped_submissions(), 1u);
  EXPECT_EQ(sharded.Stats().arrivals, 1u);
  // Zero shards clamps to one staging slot instead of an unusable engine.
  ShardedStreamingEngine degenerate(0);
  EXPECT_EQ(degenerate.num_shards(), 1u);
  ASSERT_TRUE(degenerate.Submit(0, {3, 4}).ok());
  EXPECT_EQ(degenerate.Drain(), 1u);
}

// ---------------------------------------------------------------------
// ReplayTrace: windows

TEST(ReplayTraceTest, CumulativeWindowsMatchPrefixRecounts) {
  const TemporalTrace trace = RandomTrace(30, 90, 7, 61);
  ReplayOptions options;
  options.window_width = 3;
  const ReplayResult result = ReplayTrace(trace, options).value();
  ASSERT_FALSE(result.windows.empty());

  uint64_t replayed = 0;
  DynamicHypergraph prefix;
  for (const WindowResult& window : result.windows) {
    replayed += window.arrivals;
    // Rebuild the prefix the window claims to cover and recount.
    while (prefix.num_edges() < window.num_edges) {
      const auto& nodes = trace.arrivals[prefix.num_edges()].nodes;
      ASSERT_TRUE(
          prefix.AddEdge(std::span<const NodeId>(nodes.data(), nodes.size()))
              .ok());
    }
    EXPECT_EQ(window.num_edges, static_cast<size_t>(replayed));
    ExpectBitIdentical(
        window.counts, OracleCounts(prefix.Snapshot().value()),
        "window [" + std::to_string(window.start_time) + ", " +
            std::to_string(window.end_time) + ")");
  }
  EXPECT_EQ(replayed, trace.size());
  EXPECT_EQ(result.stats.arrivals, trace.size());
}

TEST(ReplayTraceTest, TumblingWindowsMatchPerWindowRecounts) {
  const TemporalTrace trace = RandomTrace(30, 90, 7, 71);
  ReplayOptions options;
  options.window_width = 4;
  options.mode = WindowMode::kTumbling;
  const ReplayResult result = ReplayTrace(trace, options).value();
  ASSERT_FALSE(result.windows.empty());

  size_t index = 0;
  for (const WindowResult& window : result.windows) {
    DynamicHypergraph just_window;
    for (uint64_t k = 0; k < window.arrivals; ++k, ++index) {
      const auto& nodes = trace.arrivals[index].nodes;
      ASSERT_TRUE(just_window
                      .AddEdge(std::span<const NodeId>(nodes.data(),
                                                       nodes.size()))
                      .ok());
    }
    EXPECT_EQ(window.num_edges, just_window.num_edges());
    ExpectBitIdentical(
        window.counts, OracleCounts(just_window.Snapshot().value()),
        "tumbling window [" + std::to_string(window.start_time) + ", " +
            std::to_string(window.end_time) + ")");
  }
  EXPECT_EQ(index, trace.size());
}

TEST(ReplayTraceTest, SkipsEmptyWindowsAndValidates) {
  TemporalTrace trace;
  trace.arrivals.push_back(TimedEdge{3, {0, 1}});
  trace.arrivals.push_back(TimedEdge{1000000007, {1, 2}});  // sparse stamps
  ReplayOptions options;
  options.window_width = 2;
  const ReplayResult result = ReplayTrace(trace, options).value();
  // Gap windows are skipped — replay cost stays bounded by the arrival
  // count — and boundaries stay on the grid anchored at the first time.
  ASSERT_EQ(result.windows.size(), 2u);
  EXPECT_EQ(result.windows[0].start_time, 3u);
  EXPECT_EQ(result.windows[0].end_time, 5u);
  EXPECT_EQ(result.windows[0].num_edges, 1u);
  EXPECT_EQ(result.windows[1].start_time, 1000000007u);
  EXPECT_EQ(result.windows[1].arrivals, 1u);
  EXPECT_EQ(result.windows[1].num_edges, 2u);
  EXPECT_EQ((result.windows[1].start_time - 3) % 2, 0u);  // on the grid

  options.window_width = 0;
  EXPECT_FALSE(ReplayTrace(trace, options).ok());

  TemporalTrace decreasing;
  decreasing.arrivals.push_back(TimedEdge{5, {0, 1}});
  decreasing.arrivals.push_back(TimedEdge{3, {1, 2}});
  options.window_width = 1;
  EXPECT_FALSE(ReplayTrace(decreasing, options).ok());

  EXPECT_TRUE(ReplayTrace(TemporalTrace{}, options).value().windows.empty());
}

TEST(ReplayTraceTest, SlidingWithDefaultHorizonMatchesTumbling) {
  // horizon == window_width makes the sliding live set exactly the
  // closing window's own arrivals, so the emitted series must be
  // bit-identical to a tumbling replay of the same trace — but computed
  // by eviction instead of rebuild.
  const TemporalTrace trace = RandomTrace(30, 90, 7, 191);
  ReplayOptions options;
  options.window_width = 4;
  options.mode = WindowMode::kTumbling;
  const ReplayResult tumbling = ReplayTrace(trace, options).value();
  options.mode = WindowMode::kSliding;  // horizon = 0 -> window_width
  const ReplayResult sliding = ReplayTrace(trace, options).value();

  ASSERT_EQ(sliding.windows.size(), tumbling.windows.size());
  uint64_t evictions = 0;
  for (size_t i = 0; i < sliding.windows.size(); ++i) {
    EXPECT_EQ(sliding.windows[i].start_time, tumbling.windows[i].start_time);
    EXPECT_EQ(sliding.windows[i].arrivals, tumbling.windows[i].arrivals);
    EXPECT_EQ(sliding.windows[i].num_edges, tumbling.windows[i].num_edges);
    ExpectBitIdentical(sliding.windows[i].counts, tumbling.windows[i].counts,
                       "sliding vs tumbling window " + std::to_string(i));
    evictions += sliding.windows[i].evictions;
  }
  // Everything not in the last window was evicted along the way.
  EXPECT_EQ(evictions + sliding.windows.back().num_edges, trace.size());
  EXPECT_EQ(sliding.stats.removals, evictions);
}

TEST(ReplayTraceTest, SlidingHorizonMatchesTrailingRecount) {
  // Overlapping windows (horizon = 2 widths): at every close T the live
  // graph must be exactly the arrivals with time in [T - horizon, T),
  // and the counts the oracle recount of that trailing slice.
  const TemporalTrace trace = RandomTrace(28, 80, 7, 199);
  ReplayOptions options;
  options.window_width = 3;
  options.horizon = 6;
  options.mode = WindowMode::kSliding;
  const ReplayResult result = ReplayTrace(trace, options).value();
  ASSERT_FALSE(result.windows.empty());

  for (const WindowResult& window : result.windows) {
    const uint64_t cutoff =
        window.end_time >= options.horizon ? window.end_time - options.horizon
                                           : 0;
    DynamicHypergraph trailing;
    for (const TimedEdge& arrival : trace.arrivals) {
      if (arrival.time >= window.end_time) break;
      if (arrival.time < cutoff) continue;
      ASSERT_TRUE(trailing
                      .AddEdge(std::span<const NodeId>(arrival.nodes.data(),
                                                       arrival.nodes.size()))
                      .ok());
    }
    EXPECT_EQ(window.num_edges, trailing.num_live_edges());
    ExpectBitIdentical(
        window.counts, OracleCounts(trailing.Snapshot().value()),
        "trailing window [" + std::to_string(window.start_time) + ", " +
            std::to_string(window.end_time) + ")");
  }
}

TEST(ReplayTraceTest, SlidingRejectsHorizonBelowWidth) {
  TemporalTrace trace;
  trace.arrivals.push_back(TimedEdge{0, {0, 1}});
  ReplayOptions options;
  options.mode = WindowMode::kSliding;
  options.window_width = 5;
  options.horizon = 4;  // arrivals would expire before their window closed
  EXPECT_FALSE(ReplayTrace(trace, options).ok());
  options.horizon = 5;
  EXPECT_TRUE(ReplayTrace(trace, options).ok());
  // Non-sliding modes ignore the horizon instead of rejecting it.
  options.mode = WindowMode::kCumulative;
  options.horizon = 1;
  EXPECT_TRUE(ReplayTrace(trace, options).ok());
}

// ---------------------------------------------------------------------
// Trace I/O and the temporal generator's two views

TEST(TemporalTraceTest, TextRoundTrip) {
  const TemporalTrace trace = RandomTrace(20, 25, 5, 83);
  const std::string text = FormatTemporalTrace(trace);
  const TemporalTrace parsed = ParseTemporalTrace(text).value();
  ASSERT_EQ(parsed.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed.arrivals[i].time, trace.arrivals[i].time);
    EXPECT_EQ(parsed.arrivals[i].nodes, trace.arrivals[i].nodes);
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "mochy_trace_test.txt")
          .string();
  ASSERT_TRUE(SaveTemporalTrace(trace, path).ok());
  const TemporalTrace loaded = LoadTemporalTrace(path).value();
  EXPECT_EQ(loaded.size(), trace.size());
  std::remove(path.c_str());

  EXPECT_TRUE(ParseTemporalTrace("# comment only\n").value().empty());
  EXPECT_FALSE(ParseTemporalTrace("5\n").ok());        // timestamp, no nodes
  EXPECT_FALSE(ParseTemporalTrace("5 1 x\n").ok());    // non-numeric
  EXPECT_FALSE(ParseTemporalTrace("5 1\n3 2\n").ok());  // decreasing time
  // 2^64 must be rejected, not silently wrapped to time 0.
  EXPECT_FALSE(ParseTemporalTrace("18446744073709551616 1 2\n").ok());
  EXPECT_FALSE(ParseTemporalTrace("5 4294967295\n").ok());  // id = kInvalidNode
}

TEST(TemporalTraceTest, GeneratedTraceMatchesSnapshots) {
  // The two views of the generator must describe the same process: the
  // trace grouped by year and deduplicated is exactly the per-year
  // snapshot sequence.
  TemporalConfig config;
  config.num_years = 5;
  config.num_nodes = 120;
  config.edges_first_year = 30;
  config.edges_last_year = 80;
  config.seed = 7;
  const TemporalTrace trace = GenerateTemporalTrace(config).value();
  ASSERT_TRUE(trace.Validate().ok());
  EXPECT_EQ(trace.arrivals.front().time, 0u);
  EXPECT_EQ(trace.arrivals.back().time, config.num_years - 1);

  const auto years = GenerateTemporalCoauthorship(config).value();
  ASSERT_EQ(years.size(), config.num_years);
  size_t index = 0;
  for (size_t year = 0; year < config.num_years; ++year) {
    std::set<std::vector<NodeId>> from_trace;
    while (index < trace.size() && trace.arrivals[index].time == year) {
      std::vector<NodeId> nodes = trace.arrivals[index].nodes;
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      from_trace.insert(std::move(nodes));
      ++index;
    }
    EXPECT_EQ(from_trace.size(), years[year].num_edges()) << "year " << year;
    for (EdgeId e = 0; e < years[year].num_edges(); ++e) {
      const auto span = years[year].edge(e);
      EXPECT_TRUE(
          from_trace.count(std::vector<NodeId>(span.begin(), span.end())))
          << "year " << year << " edge " << e;
    }
  }
  EXPECT_EQ(index, trace.size());
}

TEST(TemporalTraceTest, GeneratedTraceReplaysAgainstOracle) {
  // End-to-end: gen/temporal trace -> cumulative yearly replay -> oracle
  // recount at every window boundary.
  TemporalConfig config;
  config.num_years = 4;
  config.num_nodes = 100;
  config.edges_first_year = 25;
  config.edges_last_year = 60;
  config.seed = 11;
  const TemporalTrace trace = GenerateTemporalTrace(config).value();
  ReplayOptions options;
  options.window_width = 1;
  const ReplayResult result = ReplayTrace(trace, options).value();
  ASSERT_EQ(result.windows.size(), config.num_years);

  DynamicHypergraph prefix;
  size_t index = 0;
  for (const WindowResult& window : result.windows) {
    for (uint64_t k = 0; k < window.arrivals; ++k, ++index) {
      const auto& nodes = trace.arrivals[index].nodes;
      ASSERT_TRUE(
          prefix.AddEdge(std::span<const NodeId>(nodes.data(), nodes.size()))
              .ok());
    }
    ExpectBitIdentical(window.counts,
                       OracleCounts(prefix.Snapshot().value()),
                       "year " + std::to_string(window.start_time));
  }
}

}  // namespace
}  // namespace mochy
