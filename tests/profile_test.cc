// Tests for significance (Eq. 1), characteristic profiles (Eq. 2), Table 3
// derived quantities, and profile similarity (Figure 6 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "hypergraph/builder.h"
#include "motif/mochy_e.h"
#include "profile/significance.h"
#include "profile/similarity.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

TEST(SignificanceTest, MatchesEquationOne) {
  MotifCounts real, random;
  real[1] = 100;
  random[1] = 50;
  real[2] = 0;
  random[2] = 10;
  const ProfileVector delta = ComputeSignificance(real, random, 1.0);
  EXPECT_DOUBLE_EQ(delta[0], 50.0 / 151.0);
  EXPECT_DOUBLE_EQ(delta[1], -10.0 / 11.0);
  EXPECT_DOUBLE_EQ(delta[2], 0.0);  // both zero
}

TEST(SignificanceTest, EpsilonPreventsDivisionByZero) {
  MotifCounts real, random;
  const ProfileVector delta = ComputeSignificance(real, random, 1.0);
  for (double d : delta) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(SignificanceTest, BoundedInMinusOneToOne) {
  MotifCounts real, random;
  Rng rng(2);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    real[t] = static_cast<double>(rng.UniformInt(1000000));
    random[t] = static_cast<double>(rng.UniformInt(1000000));
  }
  for (double d : ComputeSignificance(real, random)) {
    EXPECT_GE(d, -1.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(NormalizeProfileTest, UnitNorm) {
  ProfileVector delta{};
  delta[0] = 3.0;
  delta[1] = 4.0;
  const ProfileVector cp = NormalizeProfile(delta);
  EXPECT_DOUBLE_EQ(cp[0], 0.6);
  EXPECT_DOUBLE_EQ(cp[1], 0.8);
  double norm = 0.0;
  for (double c : cp) norm += c * c;
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(NormalizeProfileTest, ZeroVectorStaysZero) {
  const ProfileVector cp = NormalizeProfile(ProfileVector{});
  for (double c : cp) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(RelativeCountsTest, MatchesTable3Definition) {
  MotifCounts real, random;
  real[5] = 300;
  random[5] = 100;
  const ProfileVector rc = RelativeCounts(real, random);
  EXPECT_DOUBLE_EQ(rc[4], 0.5);
  EXPECT_DOUBLE_EQ(rc[0], 0.0);  // 0/0 guarded
}

TEST(RankTest, RanksDescendingWithIdTieBreak) {
  MotifCounts counts;
  counts[1] = 5;
  counts[2] = 10;
  counts[3] = 5;
  const auto rank = RankByCount(counts);
  EXPECT_EQ(rank[1], 1);  // motif 2 most frequent
  EXPECT_EQ(rank[0], 2);  // motif 1 beats motif 3 on tie
  EXPECT_EQ(rank[2], 3);
  // Everything else ties at zero, ranked by id after rank 3.
  EXPECT_EQ(rank[3], 4);
}

TEST(RankTest, RankDifferenceIsAbsolute) {
  MotifCounts real, random;
  real[1] = 100;
  real[2] = 50;
  random[1] = 50;
  random[2] = 100;
  const auto diff = RankDifference(real, random);
  EXPECT_EQ(diff[0], 1);
  EXPECT_EQ(diff[1], 1);
  EXPECT_EQ(diff[5], 0);
}

TEST(CharacteristicProfileTest, EndToEndOnRandomGraph) {
  const Hypergraph g = testing::RandomHypergraph(40, 80, 2, 6, 7);
  CharacteristicProfileOptions options;
  options.num_random_graphs = 3;
  options.seed = 9;
  const auto profile = ComputeCharacteristicProfile(g, options).value();
  // Real counts must equal a direct exact count.
  const MotifCounts exact = CountMotifsExact(g);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(profile.real_counts[t], exact[t]);
  }
  double norm = 0.0;
  for (double c : profile.cp) norm += c * c;
  EXPECT_TRUE(std::abs(norm - 1.0) < 1e-9 || norm == 0.0);
}

TEST(CharacteristicProfileTest, DeterministicForSeed) {
  const Hypergraph g = testing::RandomHypergraph(30, 50, 2, 5, 8);
  CharacteristicProfileOptions options;
  options.num_random_graphs = 2;
  options.seed = 11;
  const auto a = ComputeCharacteristicProfile(g, options).value();
  const auto b = ComputeCharacteristicProfile(g, options).value();
  for (int i = 0; i < kNumHMotifs; ++i) {
    EXPECT_DOUBLE_EQ(a.cp[i], b.cp[i]);
  }
}

TEST(CharacteristicProfileTest, ApproximateModeTracksExact) {
  const Hypergraph g = testing::RandomHypergraph(50, 120, 2, 6, 10);
  CharacteristicProfileOptions exact_opts;
  exact_opts.num_random_graphs = 2;
  exact_opts.seed = 13;
  const auto exact = ComputeCharacteristicProfile(g, exact_opts).value();
  CharacteristicProfileOptions approx_opts = exact_opts;
  approx_opts.sample_ratio = 0.8;  // generous sampling
  const auto approx = ComputeCharacteristicProfile(g, approx_opts).value();
  std::vector<double> a(exact.cp.begin(), exact.cp.end());
  std::vector<double> b(approx.cp.begin(), approx.cp.end());
  EXPECT_GT(PearsonCorrelation(a, b), 0.9);
}

TEST(CharacteristicProfileTest, RejectsZeroRandomGraphs) {
  const Hypergraph g = testing::RandomHypergraph(10, 15, 2, 4, 1);
  CharacteristicProfileOptions options;
  options.num_random_graphs = 0;
  EXPECT_FALSE(ComputeCharacteristicProfile(g, options).ok());
}

TEST(SimilarityTest, PearsonBasics) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(SimilarityTest, CorrelationMatrixSymmetricUnitDiagonal) {
  const std::vector<std::vector<double>> profiles = {
      {1, 2, 3, 4}, {4, 3, 2, 1}, {1, 3, 2, 4}};
  const auto matrix = CorrelationMatrix(profiles).value();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
    }
  }
}

TEST(SimilarityTest, RejectsMixedDimensions) {
  EXPECT_FALSE(CorrelationMatrix({{1, 2}, {1, 2, 3}}).ok());
}

TEST(SimilarityTest, DomainSeparationGap) {
  // Two domains; within-domain pairs perfectly correlated, across weakly.
  const std::vector<std::vector<double>> profiles = {
      {1, 2, 3, 4}, {2, 4, 6, 8}, {4, 3, 3, 1}, {8, 6, 6, 2}};
  const std::vector<std::string> domains = {"x", "x", "y", "y"};
  const auto matrix = CorrelationMatrix(profiles).value();
  const auto sep = ComputeDomainSeparation(matrix, domains).value();
  EXPECT_DOUBLE_EQ(sep.within_mean, 1.0);
  EXPECT_LT(sep.across_mean, 1.0);
  EXPECT_GT(sep.gap, 0.0);
}

TEST(SimilarityTest, DomainSeparationRejectsBadShapes) {
  EXPECT_FALSE(ComputeDomainSeparation({{1.0}}, {"a", "b"}).ok());
  EXPECT_FALSE(
      ComputeDomainSeparation({{1.0, 0.5}, {0.5}}, {"a", "b"}).ok());
}

TEST(SimilarityTest, LeaveOneOutAccuracy) {
  const std::vector<std::vector<double>> profiles = {
      {1, 2, 3, 4}, {1.1, 2, 3, 4}, {4, 3, 2, 1}, {4, 3.1, 2, 1}};
  const std::vector<std::string> domains = {"x", "x", "y", "y"};
  EXPECT_EQ(LeaveOneOutDomainAccuracy(profiles, domains), 4u);
}

TEST(CountsTest, TotalsAndArithmetic) {
  MotifCounts counts;
  counts[17] = 5;
  counts[1] = 3;
  EXPECT_DOUBLE_EQ(counts.Total(), 8.0);
  EXPECT_DOUBLE_EQ(counts.TotalOpen(), 5.0);
  EXPECT_DOUBLE_EQ(counts.TotalClosed(), 3.0);
  MotifCounts other;
  other[1] = 1;
  counts += other;
  EXPECT_DOUBLE_EQ(counts[1], 4.0);
  counts *= 0.5;
  EXPECT_DOUBLE_EQ(counts[1], 2.0);
}

TEST(CountsTest, MeanOfSeveral) {
  MotifCounts a, b;
  a[3] = 10;
  b[3] = 20;
  b[4] = 2;
  const MotifCounts mean = MotifCounts::Mean({a, b});
  EXPECT_DOUBLE_EQ(mean[3], 15.0);
  EXPECT_DOUBLE_EQ(mean[4], 1.0);
  EXPECT_DOUBLE_EQ(MotifCounts::Mean({}).Total(), 0.0);
}

TEST(CountsTest, RelativeError) {
  MotifCounts est, ref;
  ref[1] = 100;
  est[1] = 90;
  EXPECT_DOUBLE_EQ(est.RelativeError(ref), 0.1);
  MotifCounts zero;
  EXPECT_DOUBLE_EQ(zero.RelativeError(MotifCounts{}), 0.0);
  EXPECT_TRUE(std::isinf(est.RelativeError(MotifCounts{})));
}

TEST(CountsTest, ToStringListsAllMotifs) {
  MotifCounts counts;
  counts[26] = 7;
  const std::string text = counts.ToString();
  EXPECT_NE(text.find("h-motif 26: 7"), std::string::npos);
  EXPECT_NE(text.find("h-motif  1: 0"), std::string::npos);
}

}  // namespace
}  // namespace mochy
