// Tests for MoCHy-A+W (motif/mochy_weighted.h), the projection-free
// weighted-wedge estimator: determinism in the seed, exactness of the
// weight normalizer W, unbiasedness against the brute-force counts of
// small graphs (fixed seeds — every expectation here is deterministic),
// and the no-wedge failure mode. The estimator runs single-threaded
// (MochyWeightedOptions has no thread knob), so same-seed bit-identity
// is its entire determinism contract.
#include <gtest/gtest.h>

#include <cmath>

#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/mochy_weighted.h"
#include "motif/reference.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph SmallGraph(uint64_t seed) {
  return testing::RandomHypergraph(/*num_nodes=*/24, /*num_edges=*/40,
                                   /*min_size=*/2, /*max_size=*/5, seed);
}

TEST(MochyWeightedTest, SameSeedIsBitIdentical) {
  const Hypergraph graph = SmallGraph(3);
  MochyWeightedOptions options;
  options.num_samples = 500;
  options.seed = 99;
  const MochyWeightedResult a = CountMotifsWeightedWedge(graph, options).value();
  const MochyWeightedResult b = CountMotifsWeightedWedge(graph, options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(a.counts[t], b.counts[t]) << "motif " << t;
  }
  EXPECT_EQ(a.estimated_num_wedges, b.estimated_num_wedges);
  EXPECT_EQ(a.total_weight, b.total_weight);

  // A different seed must actually draw a different sample path.
  options.seed = 100;
  const MochyWeightedResult c = CountMotifsWeightedWedge(graph, options).value();
  EXPECT_NE(a.counts.Total(), c.counts.Total());
}

TEST(MochyWeightedTest, TotalWeightIsExact) {
  const Hypergraph graph = SmallGraph(5);
  const MochyWeightedResult result =
      CountMotifsWeightedWedge(graph, {}).value();
  // W = Σ_v C(|E_v|, 2) counts each wedge once per shared node, which is
  // exactly the projection's total weight Σ w(i,j).
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  EXPECT_EQ(result.total_weight, projection.total_weight());
}

TEST(MochyWeightedTest, MeanOverSeedsApproachesBruteForce) {
  // Unbiasedness, empirically: the mean estimate over many independent
  // seeds must approach the brute-force counts of the same graph. Seeds
  // are fixed, so this is a deterministic regression gate, not a flaky
  // statistical test.
  const Hypergraph graph = SmallGraph(11);
  const MotifCounts want = testing::BruteForceCounts(graph);
  ASSERT_GT(want.Total(), 0.0);

  std::vector<MotifCounts> estimates;
  std::vector<double> wedge_estimates;
  MochyWeightedOptions options;
  options.num_samples = 400;
  for (uint64_t trial = 0; trial < 64; ++trial) {
    options.seed = 1000 + trial;
    const MochyWeightedResult result =
        CountMotifsWeightedWedge(graph, options).value();
    estimates.push_back(result.counts);
    wedge_estimates.push_back(result.estimated_num_wedges);
  }
  const MotifCounts mean = MotifCounts::Mean(estimates);
  EXPECT_LT(mean.RelativeError(want), 0.05)
      << "mean\n" << mean.ToString() << "want\n" << want.ToString();

  double wedge_mean = 0.0;
  for (const double w : wedge_estimates) wedge_mean += w;
  wedge_mean /= static_cast<double>(wedge_estimates.size());
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  const double true_wedges = static_cast<double>(projection.num_wedges());
  EXPECT_LT(std::abs(wedge_mean - true_wedges) / true_wedges, 0.05);
}

TEST(MochyWeightedTest, LargeSampleTracksExactOnFigure2) {
  // The golden Figure-2 graph (motifs 10, 21, 22 once each): a heavy
  // sample budget on a 4-edge graph must land near the exact vector.
  HypergraphBuilder builder;
  builder.AddEdge({0, 1, 2});
  builder.AddEdge({0, 1, 3});
  builder.AddEdge({0, 4, 5});
  builder.AddEdge({2, 6, 7});
  const Hypergraph graph = std::move(builder).Build({}).value();
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  const MotifCounts want = reference::CountMotifsExact(graph, projection, 1);
  ASSERT_EQ(want.Total(), 3.0);

  MochyWeightedOptions options;
  options.num_samples = 20000;
  options.seed = 17;
  const MochyWeightedResult result =
      CountMotifsWeightedWedge(graph, options).value();
  EXPECT_LT(result.counts.RelativeError(want), 0.1)
      << result.counts.ToString();
}

TEST(MochyWeightedTest, FailsWithoutWedges) {
  // Disjoint edges: no node has degree >= 2, so there is nothing to
  // sample and the estimator must say so instead of dividing by W = 0.
  HypergraphBuilder builder;
  builder.AddEdge({0, 1});
  builder.AddEdge({2, 3});
  const Hypergraph graph = std::move(builder).Build({}).value();
  EXPECT_FALSE(CountMotifsWeightedWedge(graph, {}).ok());

  EXPECT_FALSE(CountMotifsWeightedWedge(Hypergraph(), {}).ok());
}

}  // namespace
}  // namespace mochy
