// Tests for per-hyperedge motif participation counts (motif/per_edge.h),
// the HM26 features of the paper's Table 4 case study. Two oracles pin
// the rows down: every instance contains exactly three hyperedges, so
// summing any motif's column over all rows must give exactly 3x the
// global count, and an independent brute-force enumeration (direct set
// algebra, no projection) must reproduce every row bit-exactly.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/projection.h"
#include "motif/engine.h"
#include "motif/per_edge.h"
#include "motif/reference.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

using PerEdgeRows = std::vector<std::array<double, kNumHMotifs>>;

PerEdgeRows ComputeRows(const Hypergraph& graph) {
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  return ComputePerEdgeMotifCounts(graph, projection);
}

/// Independent oracle: classify every unordered triple with plain set
/// algebra and credit the instance to its three member rows.
PerEdgeRows BruteForceRows(const Hypergraph& graph) {
  const size_t m = graph.num_edges();
  std::vector<std::set<NodeId>> sets(m);
  for (EdgeId e = 0; e < m; ++e) {
    const auto span = graph.edge(e);
    sets[e] = std::set<NodeId>(span.begin(), span.end());
  }
  PerEdgeRows rows(m);
  for (auto& row : rows) row.fill(0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      for (size_t k = j + 1; k < m; ++k) {
        const int id = testing::BruteForceClassify(sets[i], sets[j], sets[k]);
        if (id == 0) continue;
        rows[i][id - 1] += 1.0;
        rows[j][id - 1] += 1.0;
        rows[k][id - 1] += 1.0;
      }
    }
  }
  return rows;
}

TEST(PerEdgeTest, RowsMatchBruteForceBitExactly) {
  for (const uint64_t seed : {2u, 23u, 47u}) {
    const Hypergraph graph = testing::RandomHypergraph(
        /*num_nodes=*/20, /*num_edges=*/30, /*min_size=*/1, /*max_size=*/6,
        seed);
    const PerEdgeRows got = ComputeRows(graph);
    const PerEdgeRows want = BruteForceRows(graph);
    ASSERT_EQ(got.size(), graph.num_edges()) << "seed " << seed;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      for (int t = 0; t < kNumHMotifs; ++t) {
        EXPECT_EQ(got[e][t], want[e][t])
            << "seed " << seed << " edge " << e << " motif " << (t + 1);
      }
    }
  }
}

TEST(PerEdgeTest, ColumnsSumToThreeTimesGlobalCounts) {
  // Every instance contributes to exactly 3 rows, so per-motif column
  // sums are 3x the global exact counts — integer-exact, no tolerance.
  const Hypergraph graph = testing::RandomHypergraph(
      /*num_nodes=*/28, /*num_edges=*/55, /*min_size=*/2, /*max_size=*/6, 71);
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  const MotifCounts global =
      reference::CountMotifsExact(graph, projection, 1);
  ASSERT_GT(global.Total(), 0.0);

  const PerEdgeRows rows = ComputePerEdgeMotifCounts(graph, projection);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    double column = 0.0;
    for (const auto& row : rows) column += row[t - 1];
    EXPECT_EQ(column, 3.0 * global[t]) << "motif " << t;
  }
}

TEST(PerEdgeTest, GoldenFigure2Rows) {
  // Figure-2 graph: e0={0,1,2}, e1={0,1,3}, e2={0,4,5}, e3={2,6,7} with
  // exactly three instances — {e0,e1,e2} (motif 10), {e0,e1,e3} (21),
  // {e0,e2,e3} (22) — and none containing all of e1..e3 without e0's
  // overlap. Rows follow directly.
  HypergraphBuilder builder;
  builder.AddEdge({0, 1, 2});
  builder.AddEdge({0, 1, 3});
  builder.AddEdge({0, 4, 5});
  builder.AddEdge({2, 6, 7});
  const Hypergraph graph = std::move(builder).Build({}).value();
  const PerEdgeRows rows = ComputeRows(graph);
  ASSERT_EQ(rows.size(), 4u);

  auto row_total = [&](EdgeId e) {
    double sum = 0.0;
    for (const double c : rows[e]) sum += c;
    return sum;
  };
  // e0 sits in all three instances; e1 in two; e2 and e3 in the two
  // instances that contain them.
  EXPECT_EQ(rows[0][10 - 1], 1.0);
  EXPECT_EQ(rows[0][21 - 1], 1.0);
  EXPECT_EQ(rows[0][22 - 1], 1.0);
  EXPECT_EQ(row_total(0), 3.0);
  EXPECT_EQ(rows[1][10 - 1], 1.0);
  EXPECT_EQ(rows[1][21 - 1], 1.0);
  EXPECT_EQ(row_total(1), 2.0);
  EXPECT_EQ(rows[2][10 - 1], 1.0);
  EXPECT_EQ(rows[2][22 - 1], 1.0);
  EXPECT_EQ(row_total(2), 2.0);
  EXPECT_EQ(rows[3][21 - 1], 1.0);
  EXPECT_EQ(rows[3][22 - 1], 1.0);
  EXPECT_EQ(row_total(3), 2.0);
}

TEST(PerEdgeTest, EnginePathMatchesFreeFunctionAndBruteForce) {
  // The promoted engine strategy (MotifEngine::CountPerEdge) must agree
  // bit-exactly with both the free-function kernel it wraps and the
  // independent brute-force oracle — the free function stays as the
  // bit-identity reference for the engine path.
  for (const uint64_t seed : {5u, 61u}) {
    const Hypergraph graph = testing::RandomHypergraph(
        /*num_nodes=*/20, /*num_edges=*/30, /*min_size=*/1, /*max_size=*/6,
        seed);
    const MotifEngine engine = MotifEngine::Create(graph).value();
    const PerEdgeResult result = engine.CountPerEdge().value();
    const PerEdgeRows oracle = ComputeRows(graph);
    const PerEdgeRows brute = BruteForceRows(graph);
    ASSERT_EQ(result.rows.size(), graph.num_edges());
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      for (int t = 0; t < kNumHMotifs; ++t) {
        EXPECT_EQ(result.rows[e][t], oracle[e][t])
            << "seed " << seed << " edge " << e << " motif " << (t + 1);
        EXPECT_EQ(result.rows[e][t], brute[e][t])
            << "seed " << seed << " edge " << e << " motif " << (t + 1);
      }
    }
    EXPECT_EQ(result.stats.algorithm, Algorithm::kExact);
  }
}

TEST(PerEdgeTest, EmptyAndTinyGraphs) {
  EXPECT_TRUE(ComputeRows(Hypergraph()).empty());
  // Two edges cannot form a triple: rows exist but stay all-zero.
  HypergraphBuilder builder;
  builder.AddEdge({0, 1});
  builder.AddEdge({1, 2});
  const Hypergraph graph = std::move(builder).Build({}).value();
  const PerEdgeRows rows = ComputeRows(graph);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    for (const double c : row) EXPECT_EQ(c, 0.0);
  }
}

}  // namespace
}  // namespace mochy
