// Tests for batched multi-graph counting (motif/batch.h): bit-identical
// results vs. sequential per-graph engines for every strategy, per-item
// option overrides, error isolation, scheduling stats, and the batched
// characteristic-profile pipeline built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "motif/batch.h"
#include "motif/engine.h"
#include "profile/significance.h"
#include "random/chung_lu.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

std::vector<Hypergraph> TestGraphs() {
  std::vector<Hypergraph> graphs;
  graphs.push_back(testing::RandomHypergraph(40, 90, 2, 6, 3));
  graphs.push_back(testing::RandomHypergraph(25, 50, 2, 5, 5));
  graphs.push_back(testing::RandomHypergraph(60, 120, 2, 7, 7));
  return graphs;
}

// Counts `graph` the pre-batch way: its own engine, sequential call.
MotifCounts SequentialCount(const Hypergraph& graph,
                            const EngineOptions& options) {
  auto engine = MotifEngine::Create(graph, 1);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine.value().Count(options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value().counts;
}

TEST(BatchTest, BitIdenticalToSequentialForEveryStrategy) {
  const std::vector<Hypergraph> graphs = TestGraphs();
  for (Algorithm algorithm :
       {Algorithm::kExact, Algorithm::kEdgeSample, Algorithm::kLinkSample,
        Algorithm::kAuto}) {
    EngineOptions options;
    options.algorithm = algorithm;
    options.num_samples = 500;
    options.seed = 17;

    BatchOptions batch_options;
    batch_options.num_threads = 4;
    BatchRunner runner(batch_options);
    for (const Hypergraph& g : graphs) runner.Add(g, options);
    const BatchResult batch = runner.Run();

    ASSERT_TRUE(batch.all_ok()) << batch.first_error().ToString();
    ASSERT_EQ(batch.items.size(), graphs.size());
    for (size_t i = 0; i < graphs.size(); ++i) {
      const MotifCounts expected = SequentialCount(graphs[i], options);
      for (int t = 1; t <= kNumHMotifs; ++t) {
        EXPECT_DOUBLE_EQ(batch.items[i].counts[t], expected[t])
            << "algorithm=" << AlgorithmName(algorithm) << " graph=" << i
            << " motif=" << t;
      }
    }
  }
}

TEST(BatchTest, ThreadCountDoesNotChangeResults) {
  const std::vector<Hypergraph> graphs = TestGraphs();
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.num_samples = 300;
  options.seed = 23;

  std::vector<BatchResult> results;
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    BatchOptions batch_options;
    batch_options.num_threads = threads;
    BatchRunner runner(batch_options);
    for (const Hypergraph& g : graphs) runner.Add(g, options);
    results.push_back(runner.Run());
  }
  for (const BatchResult& result : results) {
    ASSERT_TRUE(result.all_ok());
    for (size_t i = 0; i < graphs.size(); ++i) {
      for (int t = 1; t <= kNumHMotifs; ++t) {
        EXPECT_DOUBLE_EQ(result.items[i].counts[t],
                         results[0].items[i].counts[t]);
      }
    }
  }
}

TEST(BatchTest, PerItemOverridesApply) {
  const Hypergraph g = testing::RandomHypergraph(40, 80, 2, 6, 11);

  EngineOptions exact;
  exact.algorithm = Algorithm::kExact;
  EngineOptions sampled;
  sampled.algorithm = Algorithm::kLinkSample;
  sampled.num_samples = 128;
  sampled.seed = 5;
  EngineOptions other_seed = sampled;
  other_seed.seed = 99;

  BatchOptions batch_options;
  batch_options.num_threads = 4;
  BatchRunner runner(batch_options);
  runner.Add(g, exact, "exact");
  runner.Add(g, sampled, "sampled");
  runner.Add(g, other_seed, "reseeded");
  const BatchResult batch = runner.Run();

  ASSERT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.items[0].stats.algorithm, Algorithm::kExact);
  EXPECT_EQ(batch.items[0].stats.samples_used, 0u);
  EXPECT_EQ(batch.items[0].label, "exact");
  EXPECT_EQ(batch.items[1].stats.algorithm, Algorithm::kLinkSample);
  EXPECT_EQ(batch.items[1].stats.samples_used, 128u);
  EXPECT_EQ(batch.items[1].label, "sampled");
  // Item 2 differs from item 1 only by seed; estimates must differ (same
  // graph, same budget) while both match their sequential counterparts.
  bool any_difference = false;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    if (batch.items[1].counts[t] != batch.items[2].counts[t]) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  const MotifCounts expected = SequentialCount(g, other_seed);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(batch.items[2].counts[t], expected[t]);
  }
}

TEST(BatchTest, FailingItemDoesNotPoisonBatch) {
  const Hypergraph good = testing::RandomHypergraph(30, 60, 2, 5, 13);

  BatchRunner runner(BatchOptions{.num_threads = 4});
  runner.Add(good, {}, "first");
  runner.AddGenerated(
      []() -> Result<Hypergraph> {
        return Status::InvalidArgument("synthetic generator failure");
      },
      {}, "broken");
  runner.Add(good, {}, "last");
  const BatchResult batch = runner.Run();

  EXPECT_FALSE(batch.all_ok());
  EXPECT_EQ(batch.stats.num_failed, 1u);
  EXPECT_EQ(batch.first_error().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch.items[0].status.ok());
  EXPECT_FALSE(batch.items[1].status.ok());
  EXPECT_TRUE(batch.items[2].status.ok());

  const MotifCounts expected = SequentialCount(good, {});
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(batch.items[0].counts[t], expected[t]);
    EXPECT_DOUBLE_EQ(batch.items[2].counts[t], expected[t]);
  }
}

TEST(BatchTest, GeneratedItemsCountTheGeneratedGraph) {
  const Hypergraph source = testing::RandomHypergraph(40, 80, 2, 6, 19);
  ChungLuOptions cl;
  cl.seed = 101;

  BatchRunner runner(BatchOptions{.num_threads = 2});
  runner.AddGenerated([&]() { return GenerateChungLu(source, cl); });
  const BatchResult batch = runner.Run();
  ASSERT_TRUE(batch.all_ok()) << batch.first_error().ToString();
  EXPECT_GT(batch.items[0].generate_seconds, 0.0);

  const Hypergraph null_graph = GenerateChungLu(source, cl).value();
  const MotifCounts expected = SequentialCount(null_graph, {});
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(batch.items[0].counts[t], expected[t]);
  }
}

TEST(BatchTest, EmptyBatchAndEmptyItem) {
  BatchRunner runner;
  const BatchResult batch = runner.Run();
  EXPECT_EQ(batch.items.size(), 0u);
  EXPECT_TRUE(batch.all_ok());
  EXPECT_TRUE(batch.first_error().ok());

  // An item with neither graph nor generator reports, not crashes.
  const BatchResult bad =
      CountBatch({nullptr}, EngineOptions{}, BatchOptions{});
  ASSERT_EQ(bad.items.size(), 1u);
  EXPECT_EQ(bad.items[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(BatchTest, CountBatchConvenienceWrapper) {
  const std::vector<Hypergraph> graphs = TestGraphs();
  std::vector<const Hypergraph*> pointers;
  for (const Hypergraph& g : graphs) pointers.push_back(&g);

  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  const BatchResult batch = CountBatch(pointers, options);
  ASSERT_TRUE(batch.all_ok());
  for (size_t i = 0; i < graphs.size(); ++i) {
    const MotifCounts expected = testing::BruteForceCounts(graphs[i]);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_DOUBLE_EQ(batch.items[i].counts[t], expected[t]);
    }
  }
}

TEST(BatchTest, StatsAreCoherent) {
  const std::vector<Hypergraph> graphs = TestGraphs();
  BatchRunner runner(BatchOptions{.num_threads = 2});
  for (const Hypergraph& g : graphs) runner.Add(g);
  const BatchResult batch = runner.Run();

  ASSERT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.stats.num_items, graphs.size());
  EXPECT_EQ(batch.stats.num_failed, 0u);
  EXPECT_GE(batch.stats.num_threads, 1u);
  EXPECT_LE(batch.stats.num_threads, 2u);
  EXPECT_GT(batch.stats.elapsed_seconds, 0.0);
  EXPECT_GT(batch.stats.busy_seconds, 0.0);
  EXPECT_GT(batch.stats.pool_utilization, 0.0);
  EXPECT_NE(batch.stats.ToString().find("items=3"), std::string::npos);
  for (const BatchItemResult& item : batch.items) {
    EXPECT_GE(item.projection_seconds, 0.0);
    EXPECT_EQ(item.generate_seconds, 0.0);  // all borrowed
  }
}

TEST(BatchedProfileTest, MatchesManualPipeline) {
  // The batched CP pipeline must reproduce, bit for bit, what a manual
  // one-engine-per-graph pipeline computes with the same seed derivation.
  const Hypergraph g = testing::RandomHypergraph(40, 80, 2, 6, 29);
  CharacteristicProfileOptions options;
  options.num_random_graphs = 3;
  options.seed = 31;
  const CharacteristicProfile profile =
      ComputeCharacteristicProfile(g, options).value();

  std::vector<MotifCounts> random_counts;
  for (int i = 0; i < options.num_random_graphs; ++i) {
    ChungLuOptions cl;
    cl.seed = options.seed + 0x9e3779b9u * static_cast<uint64_t>(i + 1);
    const Hypergraph null_graph = GenerateChungLu(g, cl).value();
    random_counts.push_back(SequentialCount(null_graph, {}));
  }
  const MotifCounts expected_mean = MotifCounts::Mean(random_counts);
  const ProfileVector expected_cp = NormalizeProfile(
      ComputeSignificance(profile.real_counts, expected_mean));

  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(profile.random_mean[t], expected_mean[t]);
    EXPECT_DOUBLE_EQ(profile.cp[t - 1], expected_cp[t - 1]);
  }
  EXPECT_EQ(profile.batch.num_items,
            static_cast<size_t>(options.num_random_graphs) + 1);
  EXPECT_EQ(profile.batch.num_failed, 0u);
}

TEST(BatchedProfileTest, ThreadCountInvariant) {
  const Hypergraph g = testing::RandomHypergraph(35, 70, 2, 5, 37);
  CharacteristicProfileOptions a_options;
  a_options.num_random_graphs = 4;
  a_options.seed = 41;
  a_options.num_threads = 1;
  CharacteristicProfileOptions b_options = a_options;
  b_options.num_threads = 6;
  // Also exercise the sampling path, whose seeds must be worker-invariant.
  CharacteristicProfileOptions c_options = b_options;
  c_options.sample_ratio = 0.5;
  CharacteristicProfileOptions d_options = c_options;
  d_options.num_threads = 2;

  const auto a = ComputeCharacteristicProfile(g, a_options).value();
  const auto b = ComputeCharacteristicProfile(g, b_options).value();
  const auto c = ComputeCharacteristicProfile(g, c_options).value();
  const auto d = ComputeCharacteristicProfile(g, d_options).value();
  for (int i = 0; i < kNumHMotifs; ++i) {
    EXPECT_DOUBLE_EQ(a.cp[i], b.cp[i]);
    EXPECT_DOUBLE_EQ(c.cp[i], d.cp[i]);
  }
}

TEST(BatchedProfileTest, PerturbNullModel) {
  const Hypergraph g = testing::RandomHypergraph(40, 80, 2, 6, 53);
  CharacteristicProfileOptions options;
  options.num_random_graphs = 3;
  options.seed = 59;
  options.null_model = NullModel::kPerturb;
  options.perturb_fraction = 0.5;

  const auto a = ComputeCharacteristicProfile(g, options).value();
  const auto b = ComputeCharacteristicProfile(g, options).value();
  CharacteristicProfileOptions chung_lu = options;
  chung_lu.null_model = NullModel::kChungLu;
  const auto c = ComputeCharacteristicProfile(g, chung_lu).value();

  bool differs_from_chung_lu = false;
  for (int i = 0; i < kNumHMotifs; ++i) {
    EXPECT_DOUBLE_EQ(a.cp[i], b.cp[i]);  // deterministic for a seed
    if (a.random_mean[i + 1] != c.random_mean[i + 1]) {
      differs_from_chung_lu = true;
    }
  }
  EXPECT_TRUE(differs_from_chung_lu);
  // Both null models preserve the hyperedge-size multiset, so the real
  // counts are the same object either way.
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(a.real_counts[t], c.real_counts[t]);
  }
}

TEST(BatchedProfileTest, ReportsTable3Columns) {
  const Hypergraph g = testing::RandomHypergraph(40, 90, 2, 6, 43);
  CharacteristicProfileOptions options;
  options.num_random_graphs = 2;
  options.seed = 47;
  const CharacteristicProfile profile =
      ComputeCharacteristicProfile(g, options).value();

  const ProfileVector expected_rc =
      RelativeCounts(profile.real_counts, profile.random_mean);
  const auto expected_rd =
      RankDifference(profile.real_counts, profile.random_mean);
  for (int i = 0; i < kNumHMotifs; ++i) {
    EXPECT_DOUBLE_EQ(profile.relative_counts[i], expected_rc[i]);
    EXPECT_EQ(profile.rank_difference[i], expected_rd[i]);
  }
}

}  // namespace
}  // namespace mochy
