// Validates Theorems 2 and 4: the samplers' *empirical* variance over many
// independent runs must match the closed-form variances (Eqs. 5, 7, 8),
// and the Section 3.3 claim Var[A+] <= Var[A] at matched ratio must hold.
// Also covers the projection-free weighted wedge sampler (MoCHy-A+W).
#include "motif/variance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "motif/mochy_weighted.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

struct Fixture {
  Hypergraph graph;
  ProjectedGraph projection;
  VarianceTerms terms;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.graph = testing::RandomHypergraph(18, 26, 1, 5, seed);
  f.projection = ProjectedGraph::Build(f.graph).value();
  f.terms = ComputeVarianceTerms(f.graph, f.projection);
  return f;
}

TEST(VarianceTermsTest, CountsMatchExactCounter) {
  const Fixture f = MakeFixture(1);
  const MotifCounts exact = CountMotifsExact(f.graph, f.projection);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(f.terms.counts[t], exact[t]);
  }
}

TEST(VarianceTermsTest, PairTotalsAreConsistent) {
  const Fixture f = MakeFixture(2);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double m = f.terms.counts[t];
    double p_total = 0.0, q_total = 0.0;
    for (int l = 0; l <= 2; ++l) p_total += f.terms.p[t - 1][l];
    for (int n = 0; n <= 1; ++n) q_total += f.terms.q[t - 1][n];
    // Ordered distinct pairs: M * (M - 1).
    EXPECT_DOUBLE_EQ(p_total, m * (m - 1.0)) << "motif " << t;
    EXPECT_DOUBLE_EQ(q_total, m * (m - 1.0)) << "motif " << t;
  }
}

TEST(VarianceTest, EmpiricalVarianceMatchesTheorem2) {
  const Fixture f = MakeFixture(3);
  const uint64_t s = 6;
  const int kTrials = 4000;
  // Empirical variance per motif over independent seeds.
  std::array<double, kNumHMotifs> sum{}, sum_sq{};
  for (int trial = 0; trial < kTrials; ++trial) {
    MochyAOptions options;
    options.num_samples = s;
    options.seed = 10000 + static_cast<uint64_t>(trial);
    const MotifCounts estimate =
        CountMotifsEdgeSample(f.graph, f.projection, options);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      sum[t - 1] += estimate[t];
      sum_sq[t - 1] += estimate[t] * estimate[t];
    }
  }
  int compared = 0;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double theory =
        MochyAVariance(f.terms, t, s, f.graph.num_edges());
    if (theory < 1.0) continue;  // skip zero/near-zero variance motifs
    const double mean = sum[t - 1] / kTrials;
    const double empirical = sum_sq[t - 1] / kTrials - mean * mean;
    EXPECT_NEAR(empirical / theory, 1.0, 0.25) << "motif " << t;
    ++compared;
  }
  EXPECT_GT(compared, 3) << "fixture too sparse to test anything";
}

TEST(VarianceTest, EmpiricalVarianceMatchesTheorem4) {
  const Fixture f = MakeFixture(4);
  const uint64_t r = 6;
  const int kTrials = 4000;
  std::array<double, kNumHMotifs> sum{}, sum_sq{};
  for (int trial = 0; trial < kTrials; ++trial) {
    MochyAPlusOptions options;
    options.num_samples = r;
    options.seed = 20000 + static_cast<uint64_t>(trial);
    const MotifCounts estimate =
        CountMotifsWedgeSample(f.graph, f.projection, options);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      sum[t - 1] += estimate[t];
      sum_sq[t - 1] += estimate[t] * estimate[t];
    }
  }
  int compared = 0;
  for (int t = 1; t <= kNumHMotifs; ++t) {
    const double theory =
        MochyAPlusVariance(f.terms, t, r, f.projection.num_wedges());
    if (theory < 1.0) continue;
    const double mean = sum[t - 1] / kTrials;
    const double empirical = sum_sq[t - 1] / kTrials - mean * mean;
    EXPECT_NEAR(empirical / theory, 1.0, 0.25) << "motif " << t;
    ++compared;
  }
  EXPECT_GT(compared, 3);
}

TEST(VarianceTest, WedgeOverlapsAreBoundedByEdgeOverlaps) {
  // The provable ingredient of the Section 3.3 comparison: two instances
  // sharing a hyperwedge share that wedge's two hyperedges, so
  // q_1[t] <= p_2[t] for every motif.
  for (uint64_t seed = 10; seed < 16; ++seed) {
    const Fixture f = MakeFixture(seed);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      EXPECT_LE(f.terms.q[t - 1][1], f.terms.p[t - 1][2])
          << "motif " << t << " seed " << seed;
    }
  }
}

TEST(VarianceTest, DominantVarianceTermFavorsAPlus) {
  // Section 3.3 argues Var[A] = O((M + p1 + p2)/alpha) vs
  // Var[A+] = O((M + q1)/alpha) and p-terms dominate in hypergraphs with
  // overlapping structure. Verify the dominant (positive) terms of the
  // exact formulas are ordered accordingly: the |E|-scaled A terms vs the
  // |∧|-scaled A+ terms at matched alpha.
  for (uint64_t seed = 10; seed < 16; ++seed) {
    const Fixture f = MakeFixture(seed);
    const uint64_t wedges = f.projection.num_wedges();
    if (wedges == 0) continue;
    const double e = static_cast<double>(f.graph.num_edges());
    const double w = static_cast<double>(wedges);
    for (int t = 1; t <= kNumHMotifs; ++t) {
      const double m = f.terms.counts[t];
      // Open motifs trade a larger per-instance constant (1/2 vs 1/3) for
      // the much smaller overlap term, so the guaranteed per-motif
      // ordering of the leading terms holds for closed motifs.
      if (m == 0.0 || IsOpenMotif(t)) continue;
      // alpha-normalized leading terms (coefficients of 1/alpha).
      const double lead_a =
          m * e / 3.0 + (f.terms.p[t - 1][1] * 1.0 * e +
                         f.terms.p[t - 1][2] * 2.0 * e) / 9.0;
      const double lead_ap = m * w / 3.0 + f.terms.q[t - 1][1] * w / 9.0;
      // Normalize by the matched sampling ratio: s = alpha |E|,
      // r = alpha |∧| cancel the e/w factors.
      EXPECT_LE(lead_ap / w, lead_a / e + 1e-9)
          << "motif " << t << " seed " << seed;
    }
  }
}

TEST(MochyWeightedTest, UnbiasedOverManyTrials) {
  const Fixture f = MakeFixture(5);
  const MotifCounts exact = CountMotifsExact(f.graph, f.projection);
  MotifCounts sum;
  double wedge_sum = 0.0;
  const int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    MochyWeightedOptions options;
    options.num_samples = 15;
    options.seed = 30000 + static_cast<uint64_t>(trial);
    const auto result = CountMotifsWeightedWedge(f.graph, options).value();
    sum += result.counts;
    wedge_sum += result.estimated_num_wedges / kTrials;
  }
  sum *= 1.0 / kTrials;
  EXPECT_LT(sum.RelativeError(exact), 0.1);
  EXPECT_NEAR(wedge_sum, static_cast<double>(f.projection.num_wedges()),
              0.1 * static_cast<double>(f.projection.num_wedges()));
}

TEST(MochyWeightedTest, TotalWeightMatchesProjection) {
  const Fixture f = MakeFixture(6);
  MochyWeightedOptions options;
  options.num_samples = 5;
  const auto result = CountMotifsWeightedWedge(f.graph, options).value();
  EXPECT_EQ(result.total_weight, f.projection.total_weight());
}

TEST(MochyWeightedTest, DeterministicInSeed) {
  const Fixture f = MakeFixture(7);
  MochyWeightedOptions options;
  options.num_samples = 25;
  options.seed = 99;
  const auto a = CountMotifsWeightedWedge(f.graph, options).value();
  const auto b = CountMotifsWeightedWedge(f.graph, options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(a.counts[t], b.counts[t]);
  }
  EXPECT_DOUBLE_EQ(a.estimated_num_wedges, b.estimated_num_wedges);
}

TEST(MochyWeightedTest, FailsWithoutWedges) {
  auto g = MakeHypergraph({{0, 1}, {2, 3}}).value();
  EXPECT_FALSE(CountMotifsWeightedWedge(g).ok());
}

}  // namespace
}  // namespace mochy
