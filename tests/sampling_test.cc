// Tests for MoCHy-A (hyperedge sampling) and MoCHy-A+ (hyperwedge
// sampling): determinism, unbiasedness (Theorems 2 and 4), exhaustive-
// sampling consistency, and agreement of the on-the-fly variant.
#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

struct Fixture {
  Hypergraph graph;
  ProjectedGraph projection;
  MotifCounts exact;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.graph = testing::RandomHypergraph(30, 60, 1, 6, seed);
  f.projection = ProjectedGraph::Build(f.graph).value();
  f.exact = CountMotifsExact(f.graph, f.projection);
  return f;
}

TEST(MochyATest, DeterministicForFixedSeed) {
  const Fixture f = MakeFixture(1);
  MochyAOptions options;
  options.num_samples = 50;
  options.seed = 99;
  const MotifCounts a = CountMotifsEdgeSample(f.graph, f.projection, options);
  const MotifCounts b = CountMotifsEdgeSample(f.graph, f.projection, options);
  for (int t = 1; t <= kNumHMotifs; ++t) EXPECT_DOUBLE_EQ(a[t], b[t]);
}

TEST(MochyATest, ThreadCountDoesNotChangeEstimate) {
  const Fixture f = MakeFixture(2);
  MochyAOptions options;
  options.num_samples = 64;
  options.seed = 5;
  options.num_threads = 1;
  const MotifCounts serial =
      CountMotifsEdgeSample(f.graph, f.projection, options);
  options.num_threads = 4;
  const MotifCounts parallel =
      CountMotifsEdgeSample(f.graph, f.projection, options);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(serial[t], parallel[t]) << "motif " << t;
  }
}

TEST(MochyATest, MeanOverManyTrialsApproachesExact) {
  // Unbiasedness (Theorem 2): average estimates over independent seeds and
  // compare with the exact counts.
  const Fixture f = MakeFixture(3);
  const int kTrials = 300;
  MotifCounts sum;
  for (int trial = 0; trial < kTrials; ++trial) {
    MochyAOptions options;
    options.num_samples = 20;
    options.seed = 1000 + trial;
    sum += CountMotifsEdgeSample(f.graph, f.projection, options);
  }
  sum *= 1.0 / kTrials;
  const double err = sum.RelativeError(f.exact);
  EXPECT_LT(err, 0.08) << "mean of estimates deviates from exact counts";
}

TEST(MochyAPlusTest, DeterministicForFixedSeed) {
  const Fixture f = MakeFixture(4);
  MochyAPlusOptions options;
  options.num_samples = 50;
  options.seed = 99;
  const MotifCounts a =
      CountMotifsWedgeSample(f.graph, f.projection, options);
  const MotifCounts b =
      CountMotifsWedgeSample(f.graph, f.projection, options);
  for (int t = 1; t <= kNumHMotifs; ++t) EXPECT_DOUBLE_EQ(a[t], b[t]);
}

TEST(MochyAPlusTest, ThreadCountDoesNotChangeEstimate) {
  const Fixture f = MakeFixture(5);
  MochyAPlusOptions options;
  options.num_samples = 64;
  options.seed = 7;
  options.num_threads = 1;
  const MotifCounts serial =
      CountMotifsWedgeSample(f.graph, f.projection, options);
  options.num_threads = 4;
  const MotifCounts parallel =
      CountMotifsWedgeSample(f.graph, f.projection, options);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(serial[t], parallel[t]) << "motif " << t;
  }
}

TEST(MochyAPlusTest, MeanOverManyTrialsApproachesExact) {
  const Fixture f = MakeFixture(6);
  const int kTrials = 300;
  MotifCounts sum;
  for (int trial = 0; trial < kTrials; ++trial) {
    MochyAPlusOptions options;
    options.num_samples = 20;
    options.seed = 2000 + trial;
    sum += CountMotifsWedgeSample(f.graph, f.projection, options);
  }
  sum *= 1.0 / kTrials;
  const double err = sum.RelativeError(f.exact);
  EXPECT_LT(err, 0.08);
}

TEST(MochyAPlusTest, LowerErrorThanMochyAAtEqualRatio) {
  // Section 3.3: at alpha = s/|E| = r/|∧|, MoCHy-A+ has smaller variance.
  // Compare the mean absolute relative error over repeated trials.
  const Fixture f = MakeFixture(7);
  const double alpha = 0.2;
  const uint64_t s = std::max<uint64_t>(
      1, static_cast<uint64_t>(alpha * f.graph.num_edges()));
  const uint64_t r = std::max<uint64_t>(
      1, static_cast<uint64_t>(alpha * f.projection.num_wedges()));
  const int kTrials = 120;
  double err_a = 0.0, err_ap = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    MochyAOptions oa;
    oa.num_samples = s;
    oa.seed = 3000 + trial;
    err_a += CountMotifsEdgeSample(f.graph, f.projection, oa)
                 .RelativeError(f.exact);
    MochyAPlusOptions op;
    op.num_samples = r;
    op.seed = 3000 + trial;
    err_ap += CountMotifsWedgeSample(f.graph, f.projection, op)
                  .RelativeError(f.exact);
  }
  EXPECT_LT(err_ap, err_a)
      << "MoCHy-A+ should be more accurate at matched sampling ratio";
}

TEST(MochyAPlusTest, ZeroWedgeGraphGivesZeroes) {
  auto g = MakeHypergraph({{0, 1}, {2, 3}}).value();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  MochyAPlusOptions options;
  options.num_samples = 10;
  const MotifCounts counts = CountMotifsWedgeSample(g, p, options);
  EXPECT_DOUBLE_EQ(counts.Total(), 0.0);
}

TEST(MochyATest, ZeroSamplesGivesZeroes) {
  const Fixture f = MakeFixture(8);
  MochyAOptions options;
  options.num_samples = 0;
  EXPECT_DOUBLE_EQ(
      CountMotifsEdgeSample(f.graph, f.projection, options).Total(), 0.0);
}

class OnTheFlyEquivalence
    : public ::testing::TestWithParam<std::tuple<EvictionPolicy, uint64_t>> {};

TEST_P(OnTheFlyEquivalence, MatchesEagerForAnyBudgetAndPolicy) {
  const auto [policy, budget] = GetParam();
  const Fixture f = MakeFixture(9);
  MochyAPlusOptions options;
  options.num_samples = 80;
  options.seed = 31;
  const MotifCounts eager =
      CountMotifsWedgeSample(f.graph, f.projection, options);

  const ProjectedDegrees degrees = ComputeProjectedDegrees(f.graph);
  LazyProjectionOptions lazy;
  lazy.memory_budget_bytes = budget;
  lazy.policy = policy;
  const MotifCounts fly =
      CountMotifsWedgeSampleOnTheFly(f.graph, degrees, options, lazy).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(eager[t], fly[t]) << "motif " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndPolicies, OnTheFlyEquivalence,
    ::testing::Combine(::testing::Values(EvictionPolicy::kWedgeAdmission,
                                         EvictionPolicy::kDegreePriority,
                                         EvictionPolicy::kLru,
                                         EvictionPolicy::kRandom),
                       ::testing::Values<uint64_t>(0, 512, 4096, 1 << 20)));

TEST(OnTheFlyTest, MemoizationReducesComputations) {
  const Fixture f = MakeFixture(10);
  const ProjectedDegrees degrees = ComputeProjectedDegrees(f.graph);
  MochyAPlusOptions options;
  options.num_samples = 200;
  options.seed = 77;

  LazyProjectionOptions no_memo;
  no_memo.memory_budget_bytes = 0;
  LazyProjection::Stats stats_none;
  ASSERT_TRUE(CountMotifsWedgeSampleOnTheFly(f.graph, degrees, options,
                                             no_memo, &stats_none)
                  .ok());

  LazyProjectionOptions big_memo;
  big_memo.memory_budget_bytes = 16 << 20;
  LazyProjection::Stats stats_big;
  ASSERT_TRUE(CountMotifsWedgeSampleOnTheFly(f.graph, degrees, options,
                                             big_memo, &stats_big)
                  .ok());

  EXPECT_EQ(stats_none.memo_hits, 0u);
  EXPECT_GT(stats_big.memo_hits, 0u);
  EXPECT_LT(stats_big.computations, stats_none.computations);
}

}  // namespace
}  // namespace mochy
