// Tests for the validating flag/wire parsers (common/parse.h): the whole
// point is that nothing silently coerces — junk, signs on unsigned
// values, overflow, trailing garbage and non-finite doubles must all be
// rejected with kInvalidArgument, and every legal boundary value must
// round-trip exactly.
#include "common/parse.h"

#include <cstdint>
#include <limits>

#include "gtest/gtest.h"

namespace mochy {
namespace {

TEST(ParseUint64Test, ParsesValidValues) {
  EXPECT_EQ(ParseUint64("0").value(), 0u);
  EXPECT_EQ(ParseUint64("42").value(), 42u);
  EXPECT_EQ(ParseUint64("007").value(), 7u);  // decimal, not octal
  EXPECT_EQ(ParseUint64("18446744073709551615").value(),
            std::numeric_limits<uint64_t>::max());
}

TEST(ParseUint64Test, RejectsJunkAndSigns) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("abc").ok());
  EXPECT_FALSE(ParseUint64("12abc").ok());   // trailing garbage
  EXPECT_FALSE(ParseUint64("abc12").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());      // atoi would wrap this
  EXPECT_FALSE(ParseUint64("+1").ok());
  EXPECT_FALSE(ParseUint64(" 1").ok());      // no whitespace trimming
  EXPECT_FALSE(ParseUint64("1 ").ok());
  EXPECT_FALSE(ParseUint64("0x10").ok());    // no hex
  EXPECT_FALSE(ParseUint64("1.5").ok());
}

TEST(ParseUint64Test, RejectsOverflow) {
  // UINT64_MAX + 1 and something far bigger.
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());
  EXPECT_FALSE(ParseUint64("99999999999999999999999").ok());
  EXPECT_EQ(ParseUint64("18446744073709551616").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParseUint64InRangeTest, EnforcesInclusiveBounds) {
  EXPECT_EQ(ParseUint64InRange("1", 1, 65535, "--port").value(), 1u);
  EXPECT_EQ(ParseUint64InRange("65535", 1, 65535, "--port").value(), 65535u);
  EXPECT_FALSE(ParseUint64InRange("0", 1, 65535, "--port").ok());
  EXPECT_FALSE(ParseUint64InRange("65536", 1, 65535, "--port").ok());
  // The flag name lands in the error message.
  const Status status =
      ParseUint64InRange("0", 1, 65535, "--port").status();
  EXPECT_NE(status.message().find("--port"), std::string::npos);
}

TEST(ParseInt64Test, ParsesSignedValues) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("-1").value(), -1);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("-9223372036854775808").value(),
            std::numeric_limits<int64_t>::min());
}

TEST(ParseInt64Test, RejectsJunkAndOverflow) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("-").ok());
  EXPECT_FALSE(ParseInt64("--1").ok());
  EXPECT_FALSE(ParseInt64("1-").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());
}

TEST(ParseDoubleTest, ParsesFiniteValues) {
  EXPECT_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_EQ(ParseDouble("-1").value(), -1.0);
  EXPECT_EQ(ParseDouble("1e-3").value(), 1e-3);
  // Hex-float literals are deliberately accepted: the serve protocol
  // moves doubles as %a strings for exact round-trips.
  EXPECT_EQ(ParseDouble("0x1.8p+1").value(), 3.0);
}

TEST(ParseDoubleTest, RejectsJunkAndNonFinite) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());   // trailing garbage
  EXPECT_FALSE(ParseDouble(" 1.5").ok());   // no whitespace trimming
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("-inf").ok());
  EXPECT_FALSE(ParseDouble("1e999").ok());  // overflows to infinity
}

TEST(ParsePositiveDoubleTest, RequiresStrictlyPositive) {
  EXPECT_EQ(ParsePositiveDouble("0.05", "--ratio").value(), 0.05);
  EXPECT_FALSE(ParsePositiveDouble("0", "--ratio").ok());
  EXPECT_FALSE(ParsePositiveDouble("-0.5", "--ratio").ok());
  const Status status = ParsePositiveDouble("-0.5", "--ratio").status();
  EXPECT_NE(status.message().find("--ratio"), std::string::npos);
}

}  // namespace
}  // namespace mochy
