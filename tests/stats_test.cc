#include "hypergraph/stats.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "motif/per_edge.h"
#include "motif/mochy_e.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

TEST(StatsTest, PaperExample) {
  auto g =
      MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
  const DatasetStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 8u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.max_edge_size, 3u);
  EXPECT_EQ(s.num_pins, 12u);
  EXPECT_DOUBLE_EQ(s.mean_edge_size, 3.0);
  EXPECT_EQ(s.num_wedges, 4u);  // paper: ∧12, ∧13, ∧23, ∧14
  EXPECT_EQ(s.max_degree, 3u);  // node L
}

TEST(StatsTest, HistogramsSumToTotals) {
  const Hypergraph g = testing::RandomHypergraph(30, 50, 1, 6, 21);
  const auto degree_hist = DegreeHistogram(g);
  uint64_t nodes = 0, pins_from_degrees = 0;
  for (size_t d = 0; d < degree_hist.size(); ++d) {
    nodes += degree_hist[d];
    pins_from_degrees += degree_hist[d] * d;
  }
  EXPECT_EQ(nodes, g.num_nodes());
  EXPECT_EQ(pins_from_degrees, g.num_pins());

  const auto size_hist = EdgeSizeHistogram(g);
  uint64_t edges = 0, pins_from_sizes = 0;
  for (size_t s = 0; s < size_hist.size(); ++s) {
    edges += size_hist[s];
    pins_from_sizes += size_hist[s] * s;
  }
  EXPECT_EQ(edges, g.num_edges());
  EXPECT_EQ(pins_from_sizes, g.num_pins());
}

TEST(StatsTest, FormatRowContainsName) {
  const DatasetStats s;
  EXPECT_NE(FormatStatsRow("my-dataset", s).find("my-dataset"),
            std::string::npos);
}

TEST(PerEdgeTest, RowsSumToThreeTimesCounts) {
  const Hypergraph g = testing::RandomHypergraph(25, 40, 1, 5, 31);
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  const auto rows = ComputePerEdgeMotifCounts(g, p);
  const MotifCounts exact = CountMotifsExact(g, p);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    double row_sum = 0.0;
    for (const auto& row : rows) row_sum += row[t - 1];
    EXPECT_DOUBLE_EQ(row_sum, 3.0 * exact[t]) << "motif " << t;
  }
}

TEST(PerEdgeTest, IsolatedEdgeHasZeroRow) {
  auto g = MakeHypergraph({{0, 1}, {1, 2}, {2, 3}, {10, 11}}).value();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  const auto rows = ComputePerEdgeMotifCounts(g, p);
  for (int t = 0; t < kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(rows[3][t], 0.0);
  }
  // The chain instance touches edges 0, 1, 2.
  double touched = 0.0;
  for (int e = 0; e < 3; ++e) {
    for (int t = 0; t < kNumHMotifs; ++t) touched += rows[e][t];
  }
  EXPECT_DOUBLE_EQ(touched, 3.0);
}

}  // namespace
}  // namespace mochy
