// Format layer of the out-of-core tier (hypergraph/binary_format.h):
// text -> binary -> text round trips must be bit-identical across every
// generator domain and adversarial random graphs; counts from an
// mmap-loaded graph must be bit-identical to the text-loaded graph at
// any thread count; and malformed containers (wrong magic, future
// version, truncation, flipped section bytes) must be rejected with the
// documented typed errors, never read as data.
#include "hypergraph/binary_format.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "gtest/gtest.h"
#include "hypergraph/io.h"
#include "motif/counts.h"
#include "motif/engine.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

using testing::CorruptFile;
using testing::FlipFileByte;
using testing::RandomHypergraph;
using testing::ScopedTempDir;

void ExpectSameGraph(const Hypergraph& a, const Hypergraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto ea = a.edge(e);
    const auto eb = b.edge(e);
    ASSERT_EQ(ea.size(), eb.size()) << "edge " << e;
    for (size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i], eb[i]) << "edge " << e << " member " << i;
    }
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto va = a.edges_of(v);
    const auto vb = b.edges_of(v);
    ASSERT_EQ(va.size(), vb.size()) << "node " << v;
    for (size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(va[i], vb[i]) << "node " << v << " incidence " << i;
    }
  }
}

/// Saves `graph` as .mhg, loads it back, and checks full CSR equality
/// plus text-level bit identity (text -> binary -> text).
void RoundTrip(const Hypergraph& graph, const std::string& tag) {
  SCOPED_TRACE(tag);
  ScopedTempDir tmp;
  const std::string path = tmp.Path(tag + ".mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  auto loaded = LoadHypergraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(graph, loaded.value());
  EXPECT_EQ(FormatHypergraph(graph), FormatHypergraph(loaded.value()));
}

TEST(BinaryFormatTest, RoundTripsEveryGeneratorDomain) {
  for (const Domain domain :
       {Domain::kCoauthorship, Domain::kContact, Domain::kEmail,
        Domain::kTags, Domain::kThreads}) {
    GeneratorConfig config = DefaultConfig(domain, 0.05);
    config.seed = 11;
    auto graph = GenerateDomainHypergraph(config);
    ASSERT_TRUE(graph.ok());
    RoundTrip(graph.value(), DomainName(domain));
  }
}

TEST(BinaryFormatTest, RoundTripsSkewedAndDuplicateRandomGraphs) {
  // Skewed: many tiny edges plus a few hubs; duplicate edges dropped by
  // the builder before serialization, so both legs agree by contract.
  RoundTrip(RandomHypergraph(40, 120, 1, 3, 21), "skewed_small_edges");
  RoundTrip(RandomHypergraph(30, 60, 5, 12, 22), "skewed_large_edges");
  RoundTrip(RandomHypergraph(10, 200, 1, 4, 23), "duplicate_heavy");
}

TEST(BinaryFormatTest, RoundTripsEmptyGraph) {
  RoundTrip(Hypergraph(), "empty");
}

TEST(BinaryFormatTest, MappedViewsAreZeroCopyConsistent) {
  const Hypergraph graph = RandomHypergraph(25, 50, 1, 6, 31);
  ScopedTempDir tmp;
  const std::string path = tmp.Path("views.mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  auto mapped = MappedHypergraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const MappedHypergraph& m = mapped.value();
  ASSERT_EQ(m.num_edges(), graph.num_edges());
  ASSERT_EQ(m.num_nodes(), graph.num_nodes());
  ASSERT_EQ(m.num_pins(), graph.num_pins());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto want = graph.edge(e);
    const auto got = m.edge(e);
    ASSERT_EQ(want.size(), got.size()) << "edge " << e;
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i], got[i]);
  }
  // The spans point into one contiguous mapping, not into copies.
  const auto* base = reinterpret_cast<const unsigned char*>(
      m.edge_offsets().data());
  EXPECT_GT(reinterpret_cast<const unsigned char*>(m.node_edges().data()),
            base);
}

TEST(BinaryFormatTest, MmapLoadedCountsBitIdenticalAcrossThreads) {
  GeneratorConfig config = DefaultConfig(Domain::kCoauthorship, 0.08);
  config.seed = 3;
  const Hypergraph graph = GenerateDomainHypergraph(config).value();
  ScopedTempDir tmp;
  const std::string text_path = tmp.Path("counts.txt");
  const std::string bin_path = tmp.Path("counts.mhg");
  ASSERT_TRUE(SaveHypergraph(graph, text_path).ok());
  ASSERT_TRUE(SaveHypergraphBinary(graph, bin_path).ok());
  const Hypergraph from_text = LoadHypergraphAuto(text_path).value();
  const Hypergraph from_binary = LoadHypergraphAuto(bin_path).value();

  for (const Algorithm algorithm :
       {Algorithm::kExact, Algorithm::kLinkSample}) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{0}}) {
      EngineOptions options;
      options.algorithm = algorithm;
      options.num_threads = threads;
      options.num_samples = 2000;
      options.seed = 7;
      const MotifCounts text_counts =
          MotifEngine::Create(from_text, options)
              .value()
              .Count(options)
              .value()
              .counts;
      const MotifCounts binary_counts =
          MotifEngine::Create(from_binary, options)
              .value()
              .Count(options)
              .value()
              .counts;
      for (int t = 1; t <= kNumHMotifs; ++t) {
        ASSERT_EQ(text_counts[t], binary_counts[t])
            << AlgorithmName(algorithm) << " threads=" << threads
            << " motif " << t;
      }
    }
  }
}

TEST(BinaryFormatTest, AutoLoadSniffsBothFormats) {
  const Hypergraph graph = RandomHypergraph(15, 30, 1, 5, 41);
  ScopedTempDir tmp;
  // Deliberately misleading extensions: only the magic bytes decide.
  const std::string text_path = tmp.Path("actually_text.mhg.txt");
  const std::string bin_path = tmp.Path("actually_binary.dat");
  ASSERT_TRUE(SaveHypergraph(graph, text_path).ok());
  ASSERT_TRUE(SaveHypergraphBinary(graph, bin_path).ok());
  EXPECT_FALSE(IsBinaryHypergraphFile(text_path));
  EXPECT_TRUE(IsBinaryHypergraphFile(bin_path));
  ExpectSameGraph(graph, LoadHypergraphAuto(text_path).value());
  ExpectSameGraph(graph, LoadHypergraphAuto(bin_path).value());
}

TEST(BinaryFormatTest, RejectsBadMagic) {
  const Hypergraph graph = RandomHypergraph(10, 20, 1, 4, 51);
  ScopedTempDir tmp;
  const std::string path = tmp.Path("bad_magic.mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  ASSERT_TRUE(FlipFileByte(path, 0));
  const auto result = LoadHypergraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsFutureVersion) {
  const Hypergraph graph = RandomHypergraph(10, 20, 1, 4, 52);
  ScopedTempDir tmp;
  const std::string path = tmp.Path("future_version.mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  const unsigned char version2[4] = {2, 0, 0, 0};
  ASSERT_TRUE(CorruptFile(path, 4, version2));
  const auto result = LoadHypergraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsTruncatedHeader) {
  ScopedTempDir tmp;
  const std::string path = tmp.Path("truncated_header.mhg");
  // A file that starts like a container but ends mid-header.
  ASSERT_TRUE(WriteTextFile(path, std::string("MHG1\x01\x00\x00\x00", 8)).ok());
  const auto result = MappedHypergraph::Open(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(BinaryFormatTest, RejectsTruncatedSection) {
  const Hypergraph graph = RandomHypergraph(20, 40, 1, 5, 53);
  ScopedTempDir tmp;
  const std::string path = tmp.Path("truncated_section.mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  // Chop the last section short; the header still promises full length.
  const auto full = ReadTextFile(path).value();
  ASSERT_TRUE(WriteTextFile(path, full.substr(0, full.size() - 16)).ok());
  const auto result = LoadHypergraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsCorruptSectionChecksum) {
  const Hypergraph graph = RandomHypergraph(20, 40, 1, 5, 54);
  ScopedTempDir tmp;
  const std::string path = tmp.Path("corrupt_section.mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  // Flip one payload byte well past the 144-byte header.
  ASSERT_TRUE(FlipFileByte(path, 160));
  const auto result = LoadHypergraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsCorruptHeaderChecksum) {
  const Hypergraph graph = RandomHypergraph(20, 40, 1, 5, 55);
  ScopedTempDir tmp;
  const std::string path = tmp.Path("corrupt_header.mhg");
  ASSERT_TRUE(SaveHypergraphBinary(graph, path).ok());
  // Scribble over a count field; the header checksum must catch it.
  ASSERT_TRUE(FlipFileByte(path, 17));
  const auto result = LoadHypergraphBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(BinaryFormatTest, MissingFileIsIOError) {
  const auto result = LoadHypergraphBinary("/nonexistent/dir/graph.mhg");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(IsBinaryHypergraphFile("/nonexistent/dir/graph.mhg"));
}

}  // namespace
}  // namespace mochy
