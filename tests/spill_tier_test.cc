// Spill tier of the out-of-core stack (hypergraph/spill_log.h + the
// disk-tier hooks in hypergraph/lazy_projection.h): the property under
// test is the recovery/fallback contract — at ANY memory budget, thread
// count, and fault schedule, counts through the spill tier are
// bit-identical to a materialized run; a lost, torn, or corrupt spill
// record may only cost a recompute (counted in the fallback stats),
// never correctness. Fault points "spill.append" / "spill.read" drive
// the torn/corrupt cases deterministically.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "gtest/gtest.h"
#include "hypergraph/io.h"
#include "hypergraph/lazy_projection.h"
#include "hypergraph/projection.h"
#include "hypergraph/spill_log.h"
#include "motif/counts.h"
#include "motif/engine.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

using testing::FlipFileByte;
using testing::RandomHypergraph;
using testing::ScopedTempDir;

class SpillTierTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

Hypergraph TestGraph() { return RandomHypergraph(60, 150, 2, 6, 77); }

EngineOptions SamplerOptions(Algorithm algorithm, size_t threads) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.num_threads = threads;
  options.num_samples = 3000;
  options.seed = 7;
  return options;
}

MotifCounts MaterializedCounts(const Hypergraph& graph,
                               const EngineOptions& options) {
  EngineOptions materialized = options;
  materialized.projection = ProjectionPolicy::kMaterialized;
  return MotifEngine::Create(graph, materialized)
      .value()
      .Count(materialized)
      .value()
      .counts;
}

EngineResult SpillRun(const Hypergraph& graph, const EngineOptions& base,
                      uint64_t budget, const std::string& spill_dir) {
  EngineOptions lazy = base;
  lazy.projection = ProjectionPolicy::kLazy;
  lazy.memory_budget = budget;
  lazy.spill_dir = spill_dir;
  auto engine = MotifEngine::Create(graph, lazy);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine.value().Count(lazy);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

void ExpectBitIdentical(const MotifCounts& got, const MotifCounts& want,
                        const std::string& context) {
  for (int t = 1; t <= kNumHMotifs; ++t) {
    ASSERT_EQ(got[t], want[t]) << context << ": motif " << t;
  }
}

// The tentpole property: budgets {footprint, /4, /10, 1-byte} ×
// {MoCHy-A, MoCHy-A+} × thread counts, all bit-identical to
// materialized. The 1-byte budget is the fully non-resident extreme —
// every neighborhood is served from disk or recomputed.
TEST_F(SpillTierTest, CountsBitIdenticalToMaterializedAcrossBudgetSweep) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  EngineOptions probe = SamplerOptions(Algorithm::kLinkSample, 1);
  probe.projection = ProjectionPolicy::kMaterialized;
  const uint64_t footprint = MotifEngine::Create(graph, probe)
                                 .value()
                                 .Count(probe)
                                 .value()
                                 .stats.projection_bytes;
  ASSERT_GT(footprint, 0u);

  for (const Algorithm algorithm :
       {Algorithm::kEdgeSample, Algorithm::kLinkSample}) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      const EngineOptions options = SamplerOptions(algorithm, threads);
      const MotifCounts want = MaterializedCounts(graph, options);
      for (const uint64_t budget :
           {footprint, footprint / 4, footprint / 10, uint64_t{1}}) {
        const EngineResult got = SpillRun(graph, options, budget, tmp.dir());
        ExpectBitIdentical(got.counts, want,
                           std::string(AlgorithmName(algorithm)) +
                               " threads=" + std::to_string(threads) +
                               " budget=" + std::to_string(budget));
      }
    }
  }
}

TEST_F(SpillTierTest, SpillAndReadmitStatsPlumbThroughEngineStats) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 2);
  const EngineResult result = SpillRun(graph, options, 1, tmp.dir());
  // At a 1-byte budget nothing is resident: every first touch spills,
  // every repeat touch re-admits from disk.
  EXPECT_GT(result.stats.lazy_spills, 0u);
  EXPECT_GT(result.stats.lazy_spill_readmits, 0u);
  EXPECT_EQ(result.stats.lazy_spill_fallbacks, 0u);
  EXPECT_EQ(result.stats.lazy_memo_hits, 0u);
  // The ToString rendering carries the new counters.
  EXPECT_NE(result.stats.ToString().find("spills="), std::string::npos);
  EXPECT_NE(result.stats.ToString().find("readmits="), std::string::npos);
}

TEST_F(SpillTierTest, ReadmittedNeighborhoodsAreExact) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const ProjectedDegrees degrees = ComputeProjectedDegrees(graph, 1);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 1;  // nothing resident: disk tier only
  options.spill_dir = tmp.dir();
  auto lazy = ConcurrentLazyProjection::Create(graph, degrees, options);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();

  NeighborhoodBuilder builder(graph.num_edges());
  LazyProjection::Stats stats;
  std::vector<Neighbor> got, want;
  // First pass spills every neighborhood; second pass must re-admit
  // byte-exact copies.
  for (int pass = 0; pass < 2; ++pass) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      lazy.value()->Neighborhood(e, builder, &got, &stats);
      builder.Compute(graph, e, &want);
      ASSERT_EQ(got.size(), want.size()) << "pass " << pass << " edge " << e;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].edge, want[i].edge);
        ASSERT_EQ(got[i].weight, want[i].weight);
      }
    }
  }
  EXPECT_EQ(stats.spill_readmits, graph.num_edges());
  EXPECT_EQ(stats.spill_fallbacks, 0u);
  const LazyProjection::Stats shared = lazy.value()->shared_stats();
  EXPECT_EQ(shared.spills, graph.num_edges());
}

TEST_F(SpillTierTest, DroppedAppendsFallBackToRecomputeWithoutDivergence) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 2);
  const MotifCounts want = MaterializedCounts(graph, options);

  FaultPlan plan;
  plan.rules.push_back({"spill.append", 0, 1, FaultError()});  // every append
  FaultInjector::Global().Arm(plan);
  const EngineResult got = SpillRun(graph, options, 1, tmp.dir());
  FaultInjector::Global().Disarm();

  EXPECT_GT(FaultInjector::Global().fired("spill.append"), 0u);
  EXPECT_EQ(got.stats.lazy_spills, 0u);          // nothing landed on disk
  EXPECT_EQ(got.stats.lazy_spill_readmits, 0u);  // so nothing to re-admit
  ExpectBitIdentical(got.counts, want, "all appends dropped");
}

TEST_F(SpillTierTest, TornAppendsAreDetectedOnReadAndRecomputed) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 1);
  const MotifCounts want = MaterializedCounts(graph, options);

  FaultPlan plan;
  // Tear every 3rd append mid-record: the index points at a full extent
  // whose tail never hit the disk — exactly a crash mid-append.
  plan.rules.push_back({"spill.append", 0, 3, FaultShortIo(6)});
  FaultInjector::Global().Arm(plan);
  const EngineResult got = SpillRun(graph, options, 1, tmp.dir());
  FaultInjector::Global().Disarm();

  EXPECT_GT(got.stats.lazy_spill_fallbacks, 0u);
  ExpectBitIdentical(got.counts, want, "torn appends");
}

TEST_F(SpillTierTest, FailedReadsFallBackToRecomputeWithoutDivergence) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 2);
  const MotifCounts want = MaterializedCounts(graph, options);

  FaultPlan plan;
  plan.rules.push_back({"spill.read", 0, 1, FaultError()});  // every read
  FaultInjector::Global().Arm(plan);
  const EngineResult got = SpillRun(graph, options, 1, tmp.dir());
  FaultInjector::Global().Disarm();

  EXPECT_GT(got.stats.lazy_spill_fallbacks, 0u);
  EXPECT_EQ(got.stats.lazy_spill_readmits, 0u);
  ExpectBitIdentical(got.counts, want, "all reads failing");
}

TEST_F(SpillTierTest, ShortReadsFallBackToRecomputeWithoutDivergence) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 2);
  const MotifCounts want = MaterializedCounts(graph, options);

  FaultPlan plan;
  plan.rules.push_back({"spill.read", 0, 2, FaultShortIo(4)});  // every 2nd
  FaultInjector::Global().Arm(plan);
  const EngineResult got = SpillRun(graph, options, 1, tmp.dir());
  FaultInjector::Global().Disarm();

  EXPECT_GT(got.stats.lazy_spill_fallbacks, 0u);
  EXPECT_GT(got.stats.lazy_spill_readmits, 0u);  // the other half still serves
  ExpectBitIdentical(got.counts, want, "short reads");
}

TEST_F(SpillTierTest, OnDiskCorruptionIsDetectedAndRecomputed) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const ProjectedDegrees degrees = ComputeProjectedDegrees(graph, 1);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 1;
  options.spill_dir = tmp.dir();
  auto lazy = ConcurrentLazyProjection::Create(graph, degrees, options);
  ASSERT_TRUE(lazy.ok());

  NeighborhoodBuilder builder(graph.num_edges());
  LazyProjection::Stats stats;
  std::vector<Neighbor> out;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    lazy.value()->Neighborhood(e, builder, &out, &stats);  // spill everything
  }
  // Bit-rot the live spill logs: flip a byte every 32 bytes.
  size_t corrupted_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(tmp.dir())) {
    const std::string path = entry.path().string();
    const auto size = std::filesystem::file_size(entry.path());
    for (uint64_t offset = 9; offset < size; offset += 32) {
      ASSERT_TRUE(FlipFileByte(path, offset));
    }
    ++corrupted_files;
  }
  ASSERT_GT(corrupted_files, 0u);

  // Every touch must still produce the exact neighborhood; corrupt
  // records surface only as fallbacks.
  std::vector<Neighbor> want;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    lazy.value()->Neighborhood(e, builder, &out, &stats);
    builder.Compute(graph, e, &want);
    ASSERT_EQ(out.size(), want.size()) << "edge " << e;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(out[i].edge, want[i].edge);
      ASSERT_EQ(out[i].weight, want[i].weight);
    }
  }
  EXPECT_GT(stats.spill_fallbacks, 0u);
}

TEST_F(SpillTierTest, SpillDirIsCreatedOnDemand) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const std::string nested = tmp.Path("nested/deeper/spill");
  ASSERT_FALSE(std::filesystem::exists(nested));
  const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 1);
  const EngineResult result = SpillRun(graph, options, 1, nested);
  EXPECT_TRUE(std::filesystem::exists(nested));
  EXPECT_GT(result.stats.lazy_spills, 0u);
}

TEST_F(SpillTierTest, SpillDirCollidingWithFileIsIOError) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  const std::string file_path = tmp.Path("not_a_directory");
  ASSERT_TRUE(WriteTextFile(file_path, "occupied").ok());
  const ProjectedDegrees degrees = ComputeProjectedDegrees(graph, 1);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 1;
  options.spill_dir = file_path;
  const auto lazy = ConcurrentLazyProjection::Create(graph, degrees, options);
  ASSERT_FALSE(lazy.ok());
  EXPECT_EQ(lazy.status().code(), StatusCode::kIOError);
}

TEST_F(SpillTierTest, SpillLogsAreScratchRemovedWithTheEngine) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  {
    const EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 1);
    const EngineResult result = SpillRun(graph, options, 1, tmp.dir());
    EXPECT_GT(result.stats.lazy_spills, 0u);
  }
  // SpillRun's engine died with scope: its logs must be gone.
  size_t remaining = 0;
  for (const auto& entry : std::filesystem::directory_iterator(tmp.dir())) {
    (void)entry;
    ++remaining;
  }
  EXPECT_EQ(remaining, 0u);
}

TEST_F(SpillTierTest, MaterializedEngineIgnoresSpillDir) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 1);
  options.projection = ProjectionPolicy::kMaterialized;
  options.spill_dir = tmp.Path("never_created");
  auto engine = MotifEngine::Create(graph, options);
  ASSERT_TRUE(engine.ok());
  const auto result = engine.value().Count(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.lazy_spills, 0u);
  EXPECT_FALSE(std::filesystem::exists(options.spill_dir));
}

TEST_F(SpillTierTest, CanonicalizeClearsSpillDir) {
  const Hypergraph graph = TestGraph();
  ScopedTempDir tmp;
  EngineOptions options = SamplerOptions(Algorithm::kLinkSample, 1);
  options.projection = ProjectionPolicy::kLazy;
  options.memory_budget = 1;
  options.spill_dir = tmp.dir();
  auto engine = MotifEngine::Create(graph, options);
  ASSERT_TRUE(engine.ok());
  const EngineOptions canonical = engine.value().Canonicalize(options);
  EXPECT_TRUE(canonical.spill_dir.empty());
  EXPECT_EQ(canonical.memory_budget, 0u);
}

}  // namespace
}  // namespace mochy
