// Differential regression tests for the stamp-array counting kernels.
//
// The production MoCHy-E/A/A+ kernels (stamp arrays + chunked claiming)
// must be BIT-identical to the retained pre-stamp baselines
// (motif/reference.h) on every graph, seed and thread count: exact counts
// are integers and the samplers rescale identical integral raw counts, so
// the comparisons below use EXPECT_EQ, not tolerances. Graphs cover
// varied degree skew, duplicate hyperedges (dedup disabled, as null
// models do) and the paper's Figure-2 running example.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "gen/generators.h"
#include "hypergraph/builder.h"
#include "motif/engine.h"
#include "motif/mochy_a.h"
#include "motif/mochy_aplus.h"
#include "motif/mochy_e.h"
#include "motif/reference.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

void ExpectBitIdentical(const MotifCounts& got, const MotifCounts& want,
                        const std::string& label) {
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_EQ(got[t], want[t]) << label << ": motif " << t;
  }
}

/// Random hypergraph with duplicate hyperedges retained: duplicates reach
/// the counting kernels when null models disable dedup, and their triples
/// must classify to id 0 in both kernel generations.
Hypergraph RandomWithDuplicates(size_t num_nodes, size_t num_edges,
                                size_t min_size, size_t max_size,
                                uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  std::vector<std::vector<NodeId>> pool;
  for (size_t e = 0; e < num_edges; ++e) {
    // One edge in four repeats an earlier one verbatim.
    if (!pool.empty() && rng.UniformInt(4) == 0) {
      const auto& dup = pool[rng.UniformInt(pool.size())];
      builder.AddEdge(std::span<const NodeId>(dup.data(), dup.size()));
      continue;
    }
    const size_t size = static_cast<size_t>(rng.UniformRange(
        static_cast<int64_t>(min_size), static_cast<int64_t>(max_size)));
    const auto ids = rng.SampleDistinct(num_nodes, std::min(size, num_nodes));
    edge.assign(ids.begin(), ids.end());
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
    pool.push_back(edge);
  }
  BuildOptions options;
  options.num_nodes = num_nodes;
  options.dedup_edges = false;
  return std::move(builder).Build(options).value();
}

/// The test corpus: low-skew sparse, high-skew dense (few nodes, many
/// edges => heavy-tailed projected degrees), a domain-generator graph and
/// a duplicate-heavy graph.
std::vector<Hypergraph> DiffCorpus() {
  std::vector<Hypergraph> graphs;
  graphs.push_back(testing::RandomHypergraph(60, 80, 2, 5, 11));
  graphs.push_back(testing::RandomHypergraph(25, 120, 2, 9, 23));
  GeneratorConfig config = DefaultConfig(Domain::kContact, 0.05);
  config.seed = 7;
  graphs.push_back(GenerateDomainHypergraph(config).value());
  graphs.push_back(RandomWithDuplicates(40, 90, 2, 6, 31));
  return graphs;
}

std::vector<size_t> ThreadCounts() {
  return {1, 2, DefaultThreadCount()};
}

TEST(KernelDiffTest, ExactMatchesReferenceAtEveryThreadCount) {
  for (const Hypergraph& graph : DiffCorpus()) {
    const auto projection = ProjectedGraph::Build(graph, 1).value();
    const MotifCounts want = reference::CountMotifsExact(graph, projection, 1);
    for (size_t threads : ThreadCounts()) {
      ExpectBitIdentical(
          CountMotifsExact(graph, projection, threads), want,
          "exact m=" + std::to_string(graph.num_edges()) + " threads=" +
              std::to_string(threads));
    }
  }
}

TEST(KernelDiffTest, ExactMatchesBruteForce) {
  // Absolute correctness, not just agreement with the old kernel.
  for (const Hypergraph& graph : DiffCorpus()) {
    if (graph.num_edges() > 130) continue;  // brute force is O(|E|^3)
    ExpectBitIdentical(CountMotifsExact(graph, 2),
                       testing::BruteForceCounts(graph), "brute-force");
  }
}

TEST(KernelDiffTest, EdgeSampleMatchesReference) {
  for (const Hypergraph& graph : DiffCorpus()) {
    const auto projection = ProjectedGraph::Build(graph, 1).value();
    for (uint64_t seed : {1u, 77u}) {
      MochyAOptions options;
      options.num_samples = 64;
      options.seed = seed;
      const MotifCounts want =
          reference::CountMotifsEdgeSample(graph, projection, options);
      for (size_t threads : ThreadCounts()) {
        options.num_threads = threads;
        ExpectBitIdentical(
            CountMotifsEdgeSample(graph, projection, options), want,
            "mochy-a seed=" + std::to_string(seed) + " threads=" +
                std::to_string(threads));
      }
    }
  }
}

TEST(KernelDiffTest, WedgeSampleMatchesReference) {
  for (const Hypergraph& graph : DiffCorpus()) {
    const auto projection = ProjectedGraph::Build(graph, 1).value();
    for (uint64_t seed : {1u, 77u}) {
      MochyAPlusOptions options;
      options.num_samples = 64;
      options.seed = seed;
      const MotifCounts want =
          reference::CountMotifsWedgeSample(graph, projection, options);
      for (size_t threads : ThreadCounts()) {
        options.num_threads = threads;
        ExpectBitIdentical(
            CountMotifsWedgeSample(graph, projection, options), want,
            "mochy-a+ seed=" + std::to_string(seed) + " threads=" +
                std::to_string(threads));
      }
    }
  }
}

TEST(KernelDiffTest, ZeroThreadsMeansDefaultThreadCount) {
  // The raw entry points must accept 0 (PR-2 contract) and still produce
  // the single-thread result bit-for-bit.
  const Hypergraph graph = testing::RandomHypergraph(40, 60, 2, 5, 5);
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  ExpectBitIdentical(CountMotifsExact(graph, projection, 0),
                     CountMotifsExact(graph, projection, 1), "exact 0-threads");

  MochyAOptions a;
  a.num_samples = 32;
  a.num_threads = 0;
  MochyAOptions a1 = a;
  a1.num_threads = 1;
  ExpectBitIdentical(CountMotifsEdgeSample(graph, projection, a),
                     CountMotifsEdgeSample(graph, projection, a1),
                     "mochy-a 0-threads");

  MochyAPlusOptions ap;
  ap.num_samples = 32;
  ap.num_threads = 0;
  MochyAPlusOptions ap1 = ap;
  ap1.num_threads = 1;
  ExpectBitIdentical(CountMotifsWedgeSample(graph, projection, ap),
                     CountMotifsWedgeSample(graph, projection, ap1),
                     "mochy-a+ 0-threads");
}

TEST(KernelDiffTest, Figure2GoldenVector) {
  // Figure 2 running example; full 26-motif golden vector (motifs 10, 21,
  // 22 each once — see tests/golden_test.cc for the construction).
  const Hypergraph graph =
      MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
  const auto projection = ProjectedGraph::Build(graph, 1).value();
  MotifCounts want;
  want[10] = 1.0;
  want[21] = 1.0;
  want[22] = 1.0;
  for (size_t threads : ThreadCounts()) {
    ExpectBitIdentical(CountMotifsExact(graph, projection, threads), want,
                       "figure-2 stamped");
  }
  ExpectBitIdentical(reference::CountMotifsExact(graph, projection, 1), want,
                     "figure-2 reference");
}

TEST(KernelDiffTest, WorkChunkBoundariesCoverTheRange) {
  const std::vector<uint64_t> skewed = {0, 1, 100, 0, 0, 50, 2, 2,
                                        2,  2, 0,  9, 1, 0,  30};
  for (size_t chunks : {1u, 2u, 4u, 64u}) {
    const auto b = WorkChunkBoundaries(skewed, chunks);
    ASSERT_GE(b.size(), 2u);
    EXPECT_EQ(b.front(), 0u);
    EXPECT_EQ(b.back(), skewed.size());
    for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  }
  EXPECT_EQ(WorkChunkBoundaries({}, 4).size(), 1u);
}

}  // namespace
}  // namespace mochy
