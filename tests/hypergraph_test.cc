#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph PaperExample() {
  // Figure 2(b): e1={L,K,F}, e2={L,H,K}, e3={B,G,L}, e4={S,R,F}.
  // Node ids: L=0, K=1, F=2, H=3, B=4, G=5, S=6, R=7.
  auto result = MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(HypergraphTest, BasicAccessors) {
  const Hypergraph g = PaperExample();
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_pins(), 12u);
  EXPECT_EQ(g.max_edge_size(), 3u);
  EXPECT_EQ(g.edge_size(0), 3u);
  // Members are sorted.
  const auto e1 = g.edge(1);
  EXPECT_EQ(std::vector<NodeId>(e1.begin(), e1.end()),
            (std::vector<NodeId>{0, 1, 3}));
}

TEST(HypergraphTest, IncidenceLists) {
  const Hypergraph g = PaperExample();
  // Node L=0 appears in e1, e2, e3.
  const auto el = g.edges_of(0);
  EXPECT_EQ(std::vector<EdgeId>(el.begin(), el.end()),
            (std::vector<EdgeId>{0, 1, 2}));
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(6), 1u);
}

TEST(HypergraphTest, EdgeContains) {
  const Hypergraph g = PaperExample();
  EXPECT_TRUE(g.EdgeContains(0, 2));
  EXPECT_FALSE(g.EdgeContains(0, 7));
}

TEST(HypergraphTest, IntersectionSizes) {
  const Hypergraph g = PaperExample();
  EXPECT_EQ(g.IntersectionSize(0, 1), 2u);  // {L, K}
  EXPECT_EQ(g.IntersectionSize(0, 3), 1u);  // {F}
  EXPECT_EQ(g.IntersectionSize(1, 3), 0u);
  EXPECT_TRUE(g.Adjacent(0, 3));
  EXPECT_FALSE(g.Adjacent(1, 3));
}

TEST(HypergraphTest, TripleIntersection) {
  const Hypergraph g = PaperExample();
  EXPECT_EQ(g.TripleIntersectionSize(0, 1, 2), 1u);  // {L}
  EXPECT_EQ(g.TripleIntersectionSize(0, 1, 3), 0u);
}

TEST(HypergraphTest, TripleIntersectionPicksAnySmallest) {
  auto g = MakeHypergraph({{0, 1, 2, 3, 4}, {0, 1}, {0, 1, 2}}).value();
  // Same result regardless of argument order.
  EXPECT_EQ(g.TripleIntersectionSize(0, 1, 2), 2u);
  EXPECT_EQ(g.TripleIntersectionSize(2, 1, 0), 2u);
  EXPECT_EQ(g.TripleIntersectionSize(1, 0, 2), 2u);
}

TEST(HypergraphTest, ValidatePasses) {
  const Hypergraph g = PaperExample();
  EXPECT_TRUE(g.Validate().ok());
}

TEST(HypergraphTest, EmptyGraph) {
  const Hypergraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_edge_size(), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(BuilderTest, SortsAndDeduplicatesMembers) {
  auto g = MakeHypergraph({{3, 1, 2, 1, 3}}).value();
  EXPECT_EQ(g.num_edges(), 1u);
  const auto span = g.edge(0);
  EXPECT_EQ(std::vector<NodeId>(span.begin(), span.end()),
            (std::vector<NodeId>{1, 2, 3}));
}

TEST(BuilderTest, RemovesDuplicateEdges) {
  auto g = MakeHypergraph({{0, 1}, {1, 0}, {0, 1, 2}, {2, 1, 0}}).value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuilderTest, KeepsDuplicatesWhenDisabled) {
  BuildOptions options;
  options.dedup_edges = false;
  auto g = MakeHypergraph({{0, 1}, {1, 0}}, options).value();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuilderTest, DropsEmptyEdges) {
  HypergraphBuilder builder;
  builder.AddEdge({0, 1});
  builder.AddEdge(std::span<const NodeId>{});
  auto g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(BuilderTest, RespectsDeclaredNumNodes) {
  BuildOptions options;
  options.num_nodes = 10;
  auto g = MakeHypergraph({{0, 1}}, options).value();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
}

TEST(BuilderTest, RejectsOutOfRangeNode) {
  BuildOptions options;
  options.num_nodes = 2;
  auto result = MakeHypergraph({{0, 5}}, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, SingletonEdgesAllowed) {
  auto g = MakeHypergraph({{7}}).value();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_TRUE(g.Validate().ok());
}

class RandomHypergraphValidation
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomHypergraphValidation, BuiltGraphsAreAlwaysConsistent) {
  const Hypergraph g =
      testing::RandomHypergraph(30, 40, 1, 6, /*seed=*/GetParam());
  EXPECT_TRUE(g.Validate().ok());
  // Round trip through the member/incidence directions.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (NodeId v : g.edge(e)) {
      const auto incident = g.edges_of(v);
      EXPECT_TRUE(std::find(incident.begin(), incident.end(), e) !=
                  incident.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHypergraphValidation,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace mochy
