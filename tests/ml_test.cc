// Tests for the ML substrate: dataset plumbing, metrics, and all five
// Table 4 classifiers on synthetic separable/noisy problems.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace mochy {
namespace {

/// Two Gaussian blobs separated along every feature by `gap` sigmas.
Dataset MakeBlobs(size_t per_class, size_t features, double gap,
                  uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < 2 * per_class; ++i) {
    const int label = i < per_class ? 0 : 1;
    std::vector<double> row(features);
    for (auto& x : row) {
      x = rng.Normal() + (label == 1 ? gap : 0.0);
    }
    data.features.push_back(std::move(row));
    data.labels.push_back(label);
  }
  return data;
}

/// XOR-style dataset: linearly inseparable, tree/MLP-learnable.
Dataset MakeXor(size_t per_quadrant, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (int qx = 0; qx < 2; ++qx) {
    for (int qy = 0; qy < 2; ++qy) {
      for (size_t i = 0; i < per_quadrant; ++i) {
        const double x = (qx ? 2.0 : -2.0) + rng.Normal() * 0.4;
        const double y = (qy ? 2.0 : -2.0) + rng.Normal() * 0.4;
        data.features.push_back({x, y});
        data.labels.push_back(qx ^ qy);
      }
    }
  }
  return data;
}

double HoldoutAccuracy(Classifier& clf, const Dataset& data, uint64_t seed) {
  Dataset train, test;
  EXPECT_TRUE(TrainTestSplit(data, 0.3, seed, &train, &test).ok());
  EXPECT_TRUE(clf.Fit(train).ok());
  return Accuracy(test.labels, clf.PredictAll(test));
}

TEST(DatasetTest, ValidateCatchesProblems) {
  Dataset data;
  data.features = {{1.0, 2.0}, {3.0}};
  data.labels = {0, 1};
  EXPECT_FALSE(data.Validate().ok());
  data.features = {{1.0}, {2.0}};
  data.labels = {0};
  EXPECT_FALSE(data.Validate().ok());
  data.labels = {0, 2};
  EXPECT_FALSE(data.Validate().ok());
  data.labels = {0, 1};
  EXPECT_TRUE(data.Validate().ok());
}

TEST(DatasetTest, SplitPreservesRowsAndIsDeterministic) {
  const Dataset data = MakeBlobs(50, 3, 1.0, 1);
  Dataset train_a, test_a, train_b, test_b;
  ASSERT_TRUE(TrainTestSplit(data, 0.25, 7, &train_a, &test_a).ok());
  ASSERT_TRUE(TrainTestSplit(data, 0.25, 7, &train_b, &test_b).ok());
  EXPECT_EQ(test_a.size(), 25u);
  EXPECT_EQ(train_a.size(), 75u);
  EXPECT_EQ(train_a.features, train_b.features);
  EXPECT_EQ(test_a.labels, test_b.labels);
  EXPECT_FALSE(TrainTestSplit(data, 1.5, 7, &train_a, &test_a).ok());
}

TEST(DatasetTest, StandardizerZeroMeanUnitVariance) {
  Dataset data = MakeBlobs(200, 4, 2.0, 3);
  const Standardizer s = Standardizer::Fit(data);
  s.Apply(&data);
  for (size_t f = 0; f < 4; ++f) {
    double mean = 0.0, var = 0.0;
    for (const auto& row : data.features) mean += row[f];
    mean /= static_cast<double>(data.size());
    for (const auto& row : data.features) {
      var += (row[f] - mean) * (row[f] - mean);
    }
    var /= static_cast<double>(data.size());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(DatasetTest, StandardizerZeroesConstantFeatures) {
  Dataset data;
  data.features = {{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  data.labels = {0, 1, 0};
  const Standardizer s = Standardizer::Fit(data);
  const auto row = s.Transform(std::vector<double>{5.0, 2.0});
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 0}, {0.9, 0.1, 0.6, 0.4}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 0}, {0.1, 0.9}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 0}, {0.9}), 0.0);  // shape mismatch
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, AucPerfectAndReversedAndRandom) {
  EXPECT_DOUBLE_EQ(AucScore({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(AucScore({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
  EXPECT_DOUBLE_EQ(AucScore({0, 1}, {0.5, 0.5}), 0.5);  // all tied
  EXPECT_DOUBLE_EQ(AucScore({1, 1}, {0.2, 0.9}), 0.5);  // one class only
}

TEST(MetricsTest, AucHandlesTiesWithMidranks) {
  // positives: 0.5, 0.9; negatives: 0.1, 0.5.
  // Pairs: (0.5 vs 0.1)=1, (0.5 vs 0.5)=0.5, (0.9 vs 0.1)=1, (0.9 vs 0.5)=1.
  EXPECT_DOUBLE_EQ(AucScore({1, 0, 1, 0}, {0.5, 0.1, 0.9, 0.5}), 3.5 / 4.0);
}

TEST(LogisticTest, LearnsSeparableBlobs) {
  LogisticRegression clf;
  EXPECT_GT(HoldoutAccuracy(clf, MakeBlobs(150, 4, 2.5, 5), 1), 0.95);
}

TEST(LogisticTest, WeightsPointTowardPositiveClass) {
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(MakeBlobs(200, 3, 2.0, 6)).ok());
  for (double w : clf.weights()) EXPECT_GT(w, 0.0);
}

TEST(LogisticTest, RejectsEmptyTrainingSet) {
  LogisticRegression clf;
  EXPECT_FALSE(clf.Fit(Dataset{}).ok());
}

TEST(DecisionTreeTest, LearnsXor) {
  DecisionTree clf;
  EXPECT_GT(HoldoutAccuracy(clf, MakeXor(80, 7), 2), 0.95);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  DecisionTreeOptions options;
  options.max_depth = 0;  // stump-less: root only
  DecisionTree clf(options);
  ASSERT_TRUE(clf.Fit(MakeXor(30, 8)).ok());
  EXPECT_EQ(clf.num_nodes(), 1u);
  // Root leaf predicts the base rate.
  EXPECT_NEAR(clf.PredictProba(std::vector<double>{0.0, 0.0}), 0.5, 0.01);
}

TEST(DecisionTreeTest, PureLeavesAreConfident) {
  DecisionTree clf;
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.features.push_back({static_cast<double>(i)});
    data.labels.push_back(i < 10 ? 0 : 1);
  }
  ASSERT_TRUE(clf.Fit(data).ok());
  EXPECT_DOUBLE_EQ(clf.PredictProba(std::vector<double>{2.0}), 0.0);
  EXPECT_DOUBLE_EQ(clf.PredictProba(std::vector<double>{15.0}), 1.0);
}

TEST(RandomForestTest, LearnsXorAndBeatsChance) {
  RandomForestOptions options;
  options.num_trees = 25;
  RandomForest clf(options);
  EXPECT_GT(HoldoutAccuracy(clf, MakeXor(60, 9), 3), 0.9);
  EXPECT_EQ(clf.num_trees(), 25u);
}

TEST(RandomForestTest, RejectsBadOptions) {
  RandomForestOptions options;
  options.num_trees = 0;
  RandomForest clf(options);
  EXPECT_FALSE(clf.Fit(MakeBlobs(10, 2, 1.0, 1)).ok());
}

TEST(KnnTest, LearnsBlobsAndInterpolates) {
  KNearestNeighbors clf;
  EXPECT_GT(HoldoutAccuracy(clf, MakeBlobs(150, 3, 2.5, 10), 4), 0.95);
}

TEST(KnnTest, ProbabilityIsNeighborFraction) {
  KnnOptions options;
  options.k = 3;
  KNearestNeighbors clf(options);
  Dataset data;
  data.features = {{0.0}, {0.1}, {0.2}, {10.0}, {10.1}};
  data.labels = {0, 0, 1, 1, 1};
  ASSERT_TRUE(clf.Fit(data).ok());
  EXPECT_NEAR(clf.PredictProba(std::vector<double>{0.05}), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(clf.PredictProba(std::vector<double>{10.05}), 1.0, 1e-9);
}

TEST(KnnTest, RejectsZeroK) {
  KnnOptions options;
  options.k = 0;
  KNearestNeighbors clf(options);
  EXPECT_FALSE(clf.Fit(MakeBlobs(10, 2, 1.0, 2)).ok());
}

TEST(MlpTest, LearnsXor) {
  MlpOptions options;
  options.epochs = 200;
  MlpClassifier clf(options);
  EXPECT_GT(HoldoutAccuracy(clf, MakeXor(80, 11), 5), 0.93);
}

TEST(MlpTest, DeterministicInSeed) {
  const Dataset data = MakeBlobs(60, 3, 1.5, 12);
  MlpOptions options;
  options.epochs = 30;
  options.seed = 77;
  MlpClassifier a(options), b(options);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  const std::vector<double> probe = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(a.PredictProba(probe), b.PredictProba(probe));
}

TEST(MlpTest, RejectsBadOptions) {
  MlpOptions options;
  options.hidden_units = 0;
  MlpClassifier clf(options);
  EXPECT_FALSE(clf.Fit(MakeBlobs(10, 2, 1.0, 3)).ok());
}

TEST(MetricsTest, HandCheckedGoldenOnTinyFixture) {
  // labels {0,0,1,1}, scores {0.2,0.6,0.4,0.8}. Thresholding at 0.5
  // predicts {0,1,0,1}: the first and last are right, the middle two
  // wrong -> accuracy exactly 1/2. AUC counts positive-negative pairs:
  // (0.4,0.2) won, (0.4,0.6) lost, (0.8,0.2) won, (0.8,0.6) won -> 3/4.
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.2, 0.6, 0.4, 0.8};
  EXPECT_DOUBLE_EQ(Accuracy(labels, scores), 0.5);
  EXPECT_DOUBLE_EQ(AucScore(labels, scores), 0.75);
}

TEST(MetricsTest, AgreeWithBruteForceRecountOnRandomInputs) {
  // Property sweep: on random score vectors (with deliberate ties from
  // quantization) the library metrics must agree with a from-scratch
  // recount — accuracy from the raw confusion matrix, AUC from explicit
  // positive-negative pair comparison with half-credit ties (the
  // midrank formula is algebraically the same statistic).
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const size_t n = 10 + static_cast<size_t>(rng.UniformInt(40));
    std::vector<int> labels(n);
    std::vector<double> scores(n);
    for (size_t i = 0; i < n; ++i) {
      labels[i] = rng.UniformInt(2) == 0 ? 0 : 1;
      // Quantize to multiples of 1/8 so ties actually occur.
      scores[i] = static_cast<double>(rng.UniformInt(9)) / 8.0;
    }
    uint64_t tp = 0, tn = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < n; ++i) {
      const int predicted = scores[i] >= 0.5 ? 1 : 0;
      if (predicted == 1 && labels[i] == 1) ++tp;
      if (predicted == 0 && labels[i] == 0) ++tn;
      if (predicted == 1 && labels[i] == 0) ++fp;
      if (predicted == 0 && labels[i] == 1) ++fn;
    }
    EXPECT_DOUBLE_EQ(Accuracy(labels, scores),
                     static_cast<double>(tp + tn) /
                         static_cast<double>(tp + tn + fp + fn))
        << "seed " << seed;

    double won = 0.0;
    uint64_t pairs = 0;
    for (size_t i = 0; i < n; ++i) {
      if (labels[i] != 1) continue;
      for (size_t j = 0; j < n; ++j) {
        if (labels[j] != 0) continue;
        ++pairs;
        if (scores[i] > scores[j]) {
          won += 1.0;
        } else if (scores[i] == scores[j]) {
          won += 0.5;
        }
      }
    }
    const double expected =
        pairs == 0 ? 0.5 : won / static_cast<double>(pairs);
    EXPECT_NEAR(AucScore(labels, scores), expected, 1e-12) << "seed " << seed;
  }
}

TEST(AllClassifiersTest, EveryClassifierIsSeedDeterministic) {
  // Oracle discipline for the Table-4 models: two instances constructed
  // with the same options and fitted on the same data must score every
  // test row bit-identically. The seeded models (logistic, tree, forest,
  // MLP) must not fall back to global RNG state; kNN has no seed at all
  // and must be deterministic by construction.
  const Dataset data = MakeBlobs(80, 4, 1.5, 31);
  Dataset train, test;
  ASSERT_TRUE(TrainTestSplit(data, 0.3, 13, &train, &test).ok());
  const auto expect_identical = [&](Classifier& a, Classifier& b,
                                    const char* name) {
    ASSERT_TRUE(a.Fit(train).ok()) << name;
    ASSERT_TRUE(b.Fit(train).ok()) << name;
    const std::vector<double> sa = a.PredictAll(test);
    const std::vector<double> sb = b.PredictAll(test);
    ASSERT_EQ(sa.size(), sb.size()) << name;
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_DOUBLE_EQ(sa[i], sb[i]) << name << " row " << i;
    }
  };
  {
    LogisticRegression a, b;
    expect_identical(a, b, "logistic");
  }
  {
    DecisionTree a, b;
    expect_identical(a, b, "tree");
  }
  {
    RandomForest a, b;
    expect_identical(a, b, "forest");
  }
  {
    KNearestNeighbors a, b;
    expect_identical(a, b, "knn");
  }
  {
    MlpOptions options;
    options.epochs = 25;
    MlpClassifier a(options), b(options);
    expect_identical(a, b, "mlp");
  }
}

class AllClassifiersSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllClassifiersSweep, BeatChanceOnNoisyBlobs) {
  std::unique_ptr<Classifier> clf;
  switch (GetParam()) {
    case 0:
      clf = std::make_unique<LogisticRegression>();
      break;
    case 1:
      clf = std::make_unique<DecisionTree>();
      break;
    case 2:
      clf = std::make_unique<RandomForest>();
      break;
    case 3:
      clf = std::make_unique<KNearestNeighbors>();
      break;
    default:
      clf = std::make_unique<MlpClassifier>();
      break;
  }
  const Dataset data = MakeBlobs(120, 5, 1.2, 20 + GetParam());
  // Well above chance (0.5); single trees overfit noisy blobs, so the bar
  // is deliberately below the Bayes rate.
  const double accuracy = HoldoutAccuracy(*clf, data, 6);
  EXPECT_GT(accuracy, 0.7) << "classifier " << GetParam();
  // AUC should also clear chance comfortably.
  Dataset train, test;
  ASSERT_TRUE(TrainTestSplit(data, 0.3, 6, &train, &test).ok());
  ASSERT_TRUE(clf->Fit(train).ok());
  EXPECT_GT(AucScore(test.labels, clf->PredictAll(test)), 0.75);
}

INSTANTIATE_TEST_SUITE_P(Classifiers, AllClassifiersSweep,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace mochy
