#include "hypergraph/projection.h"

#include <gtest/gtest.h>

#include <map>

#include "hypergraph/builder.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

Hypergraph PaperExample() {
  return MakeHypergraph({{0, 1, 2}, {0, 3, 1}, {4, 5, 0}, {6, 7, 2}}).value();
}

TEST(ProjectionTest, PaperExampleWedges) {
  const Hypergraph g = PaperExample();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  // Paper: four hyperwedges ∧12, ∧13, ∧23, ∧14 (1-based edges).
  EXPECT_EQ(p.num_wedges(), 4u);
  EXPECT_EQ(p.Weight(0, 1), 2u);  // e1 ∩ e2 = {L, K}
  EXPECT_EQ(p.Weight(0, 2), 1u);  // {L}
  EXPECT_EQ(p.Weight(1, 2), 1u);  // {L}
  EXPECT_EQ(p.Weight(0, 3), 1u);  // {F}
  EXPECT_EQ(p.Weight(1, 3), 0u);
  EXPECT_EQ(p.Weight(2, 3), 0u);
  EXPECT_EQ(p.Weight(2, 2), 0u);  // self
}

TEST(ProjectionTest, NeighborListsSortedAndSymmetric) {
  const Hypergraph g = PaperExample();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  EXPECT_EQ(p.degree(0), 3u);
  EXPECT_EQ(p.degree(3), 1u);
  for (EdgeId e = 0; e < p.num_edges(); ++e) {
    const auto nbrs = p.neighbors(e);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1].edge, nbrs[i].edge);
      }
      // Symmetry: the reverse direction exists with the same weight.
      EXPECT_EQ(p.Weight(nbrs[i].edge, e), nbrs[i].weight);
    }
  }
}

TEST(ProjectionTest, WedgeAtEnumeratesAllWedgesOnce) {
  const Hypergraph g = PaperExample();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  std::set<std::pair<EdgeId, EdgeId>> wedges;
  for (uint64_t k = 0; k < p.num_wedges(); ++k) {
    const auto [i, j] = p.WedgeAt(k);
    EXPECT_LT(i, j);
    EXPECT_GT(p.Weight(i, j), 0u);
    EXPECT_TRUE(wedges.emplace(i, j).second) << "duplicate wedge";
  }
  EXPECT_EQ(wedges.size(), p.num_wedges());
}

TEST(ProjectionTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Hypergraph g = testing::RandomHypergraph(25, 30, 1, 6, seed);
    const ProjectedGraph p = ProjectedGraph::Build(g).value();
    uint64_t expected_wedges = 0;
    for (EdgeId a = 0; a < g.num_edges(); ++a) {
      for (EdgeId b = a + 1; b < g.num_edges(); ++b) {
        const uint32_t w = static_cast<uint32_t>(g.IntersectionSize(a, b));
        EXPECT_EQ(p.Weight(a, b), w) << "seed " << seed;
        if (w > 0) ++expected_wedges;
      }
    }
    EXPECT_EQ(p.num_wedges(), expected_wedges) << "seed " << seed;
  }
}

TEST(ProjectionTest, ParallelBuildMatchesSerial) {
  const Hypergraph g = testing::RandomHypergraph(60, 120, 1, 8, 3);
  const ProjectedGraph serial = ProjectedGraph::Build(g, 1).value();
  const ProjectedGraph parallel = ProjectedGraph::Build(g, 4).value();
  EXPECT_EQ(serial.num_wedges(), parallel.num_wedges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto a = serial.neighbors(e);
    const auto b = parallel.neighbors(e);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].edge, b[i].edge);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST(ProjectionTest, TotalWeightIsSumOfPairIntersections) {
  const Hypergraph g = testing::RandomHypergraph(20, 25, 1, 5, 11);
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  uint64_t expected = 0;
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    for (EdgeId b = a + 1; b < g.num_edges(); ++b) {
      expected += g.IntersectionSize(a, b);
    }
  }
  EXPECT_EQ(p.total_weight(), expected);
}

TEST(ProjectedDegreesTest, MatchesFullProjection) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const Hypergraph g = testing::RandomHypergraph(40, 60, 1, 6, seed + 100);
    const ProjectedGraph p = ProjectedGraph::Build(g).value();
    const ProjectedDegrees d = ComputeProjectedDegrees(g, (seed % 2) + 1);
    EXPECT_EQ(d.num_wedges, p.num_wedges());
    ASSERT_EQ(d.degree.size(), g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(d.degree[e], p.degree(e)) << "seed " << seed;
    }
    ASSERT_EQ(d.wedge_prefix.size(), g.num_edges() + 1);
    EXPECT_EQ(d.wedge_prefix.back(), p.num_wedges());
  }
}

TEST(ProjectionTest, DisconnectedGraphHasNoWedges) {
  auto g = MakeHypergraph({{0, 1}, {2, 3}, {4, 5}}).value();
  const ProjectedGraph p = ProjectedGraph::Build(g).value();
  EXPECT_EQ(p.num_wedges(), 0u);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(p.degree(e), 0u);
}

}  // namespace
}  // namespace mochy
