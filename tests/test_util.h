// Shared test helpers: an independent brute-force h-motif counter (direct
// set algebra over all O(|E|^3) triples, no projected graph, no
// inclusion-exclusion), small random-hypergraph generators for
// property-style sweeps, a seeded add/remove/query schedule generator
// for fuzzing dynamic engines (RandomDynamicSchedule), and filesystem
// fixtures for I/O tests (ScopedTempDir, CorruptFile).
#ifndef MOCHY_TESTS_TEST_UTIL_H_
#define MOCHY_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hypergraph/builder.h"
#include "hypergraph/hypergraph.h"
#include "motif/counts.h"
#include "motif/pattern.h"

namespace mochy::testing {

/// RAII temp directory for I/O tests: a uniquely named directory under
/// the system temp root, recursively removed on destruction. Path(name)
/// joins a file name onto it, so tests never hand-build /tmp paths (or
/// leak files when an assertion fails before cleanup).
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "mochy_test") {
    static int counter = 0;
    const std::filesystem::path base =
        std::filesystem::temp_directory_path() /
        (prefix + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
    std::filesystem::create_directories(base);
    dir_ = base.string();
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  ~ScopedTempDir() {
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove_all(dir_, ec);
  }

  /// The directory itself.
  const std::string& dir() const { return dir_; }
  /// `name` joined onto the directory.
  std::string Path(const std::string& name) const {
    return (std::filesystem::path(dir_) / name).string();
  }

 private:
  std::string dir_;
};

/// Overwrites `bytes.size()` bytes of the file at `path` starting at
/// `offset` — the corruption primitive for format/recovery tests (flip a
/// checksum, tear a record, scribble over a section). Returns false when
/// the file cannot be opened or is shorter than offset + bytes (a
/// corruption that silently missed its target would make a test pass
/// vacuously).
inline bool CorruptFile(const std::string& path, uint64_t offset,
                        std::span<const unsigned char> bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || offset + bytes.size() > size) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  bool ok = std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0 &&
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

/// XORs one byte of the file at `path` with `mask` — the minimal
/// guaranteed-to-change corruption (writing a fixed value could be a
/// no-op if the byte already held it).
inline bool FlipFileByte(const std::string& path, uint64_t offset,
                         unsigned char mask = 0xFF) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  unsigned char byte = 0;
  bool ok = std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0 &&
            std::fread(&byte, 1, 1, f) == 1;
  byte ^= mask;
  ok = ok && std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0 &&
       std::fwrite(&byte, 1, 1, f) == 1;
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

/// Region cardinalities of a triple computed by direct set operations.
struct Regions {
  uint64_t d[3];
  uint64_t p[3];  // p[0]=p_ab, p[1]=p_bc, p[2]=p_ca
  uint64_t t;
};

inline Regions ComputeRegions(const std::set<NodeId>& a,
                              const std::set<NodeId>& b,
                              const std::set<NodeId>& c) {
  Regions r{};
  auto in = [](const std::set<NodeId>& s, NodeId v) { return s.count(v) > 0; };
  std::set<NodeId> all;
  all.insert(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  all.insert(c.begin(), c.end());
  for (NodeId v : all) {
    const bool ia = in(a, v), ib = in(b, v), ic = in(c, v);
    if (ia && ib && ic) {
      ++r.t;
    } else if (ia && ib) {
      ++r.p[0];
    } else if (ib && ic) {
      ++r.p[1];
    } else if (ic && ia) {
      ++r.p[2];
    } else if (ia) {
      ++r.d[0];
    } else if (ib) {
      ++r.d[1];
    } else {
      ++r.d[2];
    }
  }
  return r;
}

/// Motif id of a triple of node sets via the pattern tables, or 0 when the
/// triple is not a valid instance (disconnected or duplicate edges).
inline int BruteForceClassify(const std::set<NodeId>& a,
                              const std::set<NodeId>& b,
                              const std::set<NodeId>& c) {
  const Regions r = ComputeRegions(a, b, c);
  PatternBits bits = 0;
  if (r.d[0] > 0) bits |= kPatternDa;
  if (r.d[1] > 0) bits |= kPatternDb;
  if (r.d[2] > 0) bits |= kPatternDc;
  if (r.p[0] > 0) bits |= kPatternPab;
  if (r.p[1] > 0) bits |= kPatternPbc;
  if (r.p[2] > 0) bits |= kPatternPca;
  if (r.t > 0) bits |= kPatternT;
  return MotifIdFromPattern(bits);
}

/// Exact per-motif counts by checking every unordered triple of hyperedges
/// with plain set algebra. O(|E|^3) — small graphs only.
inline MotifCounts BruteForceCounts(const Hypergraph& graph) {
  const size_t m = graph.num_edges();
  std::vector<std::set<NodeId>> sets(m);
  for (EdgeId e = 0; e < m; ++e) {
    const auto span = graph.edge(e);
    sets[e] = std::set<NodeId>(span.begin(), span.end());
  }
  MotifCounts counts;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      for (size_t k = j + 1; k < m; ++k) {
        const int id = BruteForceClassify(sets[i], sets[j], sets[k]);
        if (id != 0) counts[id] += 1.0;
      }
    }
  }
  return counts;
}

/// Random hypergraph for property sweeps: `num_edges` edges with sizes in
/// [min_size, max_size] over `num_nodes` nodes. Duplicate edges allowed
/// before dedup; builder semantics apply.
inline Hypergraph RandomHypergraph(size_t num_nodes, size_t num_edges,
                                   size_t min_size, size_t max_size,
                                   uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder builder;
  std::vector<NodeId> edge;
  for (size_t e = 0; e < num_edges; ++e) {
    const size_t size = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(min_size),
                         static_cast<int64_t>(max_size)));
    const auto ids = rng.SampleDistinct(num_nodes, std::min(size, num_nodes));
    edge.assign(ids.begin(), ids.end());
    builder.AddEdge(std::span<const NodeId>(edge.data(), edge.size()));
  }
  BuildOptions options;
  options.num_nodes = num_nodes;
  auto result = std::move(builder).Build(options);
  return result.ok() ? std::move(result).value() : Hypergraph();
}

/// One step of a randomized dynamic-graph schedule.
struct DynamicOp {
  enum class Kind {
    kAdd,     ///< ingest `nodes` as a new hyperedge
    kRemove,  ///< remove the `remove_index`-th oldest currently-live edge
    kQuery,   ///< consumer-defined read (e.g. an extra oracle check)
  };
  Kind kind = Kind::kAdd;
  std::vector<NodeId> nodes;  ///< kAdd only
  /// kRemove only: index into the consumer's list of live edges in
  /// insertion order (always < the live count at this step). Indexing
  /// by position instead of edge id keeps the schedule valid for any
  /// engine's id assignment.
  size_t remove_index = 0;
};

/// Seeded add/remove/query interleaving for fuzzing dynamic counting
/// engines. Adds draw Zipf-skewed edge sizes in [1, max_edge_size] with
/// ~1 in 4 adds repeating an earlier edge verbatim (duplicates must
/// reach the delta passes); removes pick a uniformly random live edge
/// and fire with probability `remove_ratio` (when anything is live);
/// queries fire with `query_ratio`. The schedule is a pure function of
/// the arguments — to reproduce a failure, rerun with the seed from the
/// failing test's message.
inline std::vector<DynamicOp> RandomDynamicSchedule(
    size_t num_ops, size_t num_nodes, size_t max_edge_size,
    double remove_ratio, double query_ratio, uint64_t seed) {
  Rng rng(seed);
  std::vector<DynamicOp> ops;
  ops.reserve(num_ops);
  std::vector<std::vector<NodeId>> added;  // verbatim-duplicate pool
  size_t live = 0;
  for (size_t i = 0; i < num_ops; ++i) {
    const double roll = rng.UniformDouble();
    DynamicOp op;
    if (roll < remove_ratio && live > 0) {
      op.kind = DynamicOp::Kind::kRemove;
      op.remove_index = static_cast<size_t>(rng.UniformInt(live));
      --live;
    } else if (roll >= remove_ratio && roll < remove_ratio + query_ratio) {
      // A remove rolled with nothing live degrades to an add (below),
      // never to a query, so query density stays query_ratio exactly.
      op.kind = DynamicOp::Kind::kQuery;
    } else {
      op.kind = DynamicOp::Kind::kAdd;
      if (!added.empty() && rng.UniformInt(4) == 0) {
        op.nodes = added[rng.UniformInt(added.size())];
      } else {
        const size_t size = std::min<uint64_t>(
            rng.Zipf(max_edge_size, 1.2) + 1, num_nodes);
        const auto ids = rng.SampleDistinct(num_nodes, size);
        op.nodes.assign(ids.begin(), ids.end());
      }
      added.push_back(op.nodes);
      ++live;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace mochy::testing

#endif  // MOCHY_TESTS_TEST_UTIL_H_
