// Memory-bounded counting: LazyProjection / ConcurrentLazyProjection
// semantics, and the engine-level ProjectionPolicy contract — sampled
// estimates are bit-identical across kMaterialized / kLazy / kAuto for
// every strategy and thread count, budgets are respected, admission
// prefers high-wedge hubs, and the lazy statistics flow through
// EngineStats and BatchRunner. The prose version of these guarantees is
// docs/MEMORY.md.
#include "hypergraph/lazy_projection.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "hypergraph/builder.h"
#include "hypergraph/projection.h"
#include "motif/batch.h"
#include "motif/engine.h"
#include "motif/mochy_aplus.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

void ExpectSameNeighborhood(const std::vector<Neighbor>& got,
                            std::span<const Neighbor> expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].edge, expected[i].edge);
    EXPECT_EQ(got[i].weight, expected[i].weight);
  }
}

class LazyProjectionPolicySweep
    : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(LazyProjectionPolicySweep, AlwaysReturnsExactNeighborhoods) {
  const Hypergraph g = testing::RandomHypergraph(40, 70, 1, 6, 13);
  const ProjectedGraph reference = ProjectedGraph::Build(g).value();
  LazyProjectionOptions options;
  options.policy = GetParam();
  options.memory_budget_bytes = 2048;  // forces evictions
  LazyProjection lazy(g, options);
  Rng rng(3);
  for (int access = 0; access < 500; ++access) {
    const EdgeId e = static_cast<EdgeId>(rng.UniformInt(g.num_edges()));
    ExpectSameNeighborhood(lazy.Neighborhood(e), reference.neighbors(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LazyProjectionPolicySweep,
                         ::testing::Values(EvictionPolicy::kWedgeAdmission,
                                           EvictionPolicy::kDegreePriority,
                                           EvictionPolicy::kLru,
                                           EvictionPolicy::kRandom));

TEST(LazyProjectionTest, ZeroBudgetNeverMemoizes) {
  const Hypergraph g = testing::RandomHypergraph(20, 30, 1, 5, 1);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 0;
  LazyProjection lazy(g, options);
  for (int i = 0; i < 10; ++i) lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().memo_hits, 0u);
  EXPECT_EQ(lazy.stats().computations, 10u);
  EXPECT_EQ(lazy.stats().bytes_used, 0u);
}

TEST(LazyProjectionTest, DefaultBudgetIsExplicitNotUnbounded) {
  // The satellite bugfix: defaults memoize within the documented budget
  // constant, they are neither "off" nor "unbounded".
  LazyProjectionOptions options;
  EXPECT_EQ(options.memory_budget_bytes, kDefaultLazyMemoBudgetBytes);
  EXPECT_GT(kDefaultLazyMemoBudgetBytes, 0u);
  const Hypergraph g = testing::RandomHypergraph(20, 30, 1, 5, 1);
  LazyProjection lazy(g, options);
  lazy.Neighborhood(0);
  lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().memo_hits, 1u);  // defaults do memoize
}

TEST(LazyProjectionTest, RequireMemoizationWithZeroBudgetIsRejected) {
  const Hypergraph g = testing::RandomHypergraph(20, 30, 1, 5, 1);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 0;
  options.require_memoization = true;
  EXPECT_FALSE(ValidateLazyProjectionOptions(options).ok());
  EXPECT_FALSE(LazyProjection::Create(g, options).ok());
  const ProjectedDegrees degrees = ComputeProjectedDegrees(g);
  EXPECT_FALSE(ConcurrentLazyProjection::Create(g, degrees, options).ok());
  MochyAPlusOptions sampling;
  sampling.num_samples = 10;
  auto fly = CountMotifsWedgeSampleOnTheFly(g, degrees, sampling, options);
  ASSERT_FALSE(fly.ok());
  EXPECT_EQ(fly.status().code(), StatusCode::kInvalidArgument);
  // Budgets below one empty memo entry are equally useless.
  options.memory_budget_bytes = LazyEntryBytes(0) - 1;
  EXPECT_FALSE(ValidateLazyProjectionOptions(options).ok());
  // An explicit shard count must not dilute a required budget to nothing.
  options.memory_budget_bytes = 1000;
  EXPECT_FALSE(
      ConcurrentLazyProjection::Create(g, degrees, options, /*num_shards=*/64)
          .ok());
  EXPECT_TRUE(
      ConcurrentLazyProjection::Create(g, degrees, options, /*num_shards=*/4)
          .ok());
  // A workable budget with the same flag is fine.
  options.memory_budget_bytes = 1 << 20;
  EXPECT_TRUE(ValidateLazyProjectionOptions(options).ok());
  EXPECT_TRUE(
      CountMotifsWedgeSampleOnTheFly(g, degrees, sampling, options).ok());
}

TEST(LazyProjectionTest, LargeBudgetComputesEachOnce) {
  const Hypergraph g = testing::RandomHypergraph(20, 30, 1, 5, 2);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 64 << 20;
  LazyProjection lazy(g, options);
  for (int round = 0; round < 3; ++round) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) lazy.Neighborhood(e);
  }
  EXPECT_EQ(lazy.stats().computations, g.num_edges());
  EXPECT_EQ(lazy.stats().memo_hits, 2u * g.num_edges());
  EXPECT_EQ(lazy.stats().evictions, 0u);
}

TEST(LazyProjectionTest, BudgetIsRespected) {
  const Hypergraph g = testing::RandomHypergraph(40, 80, 2, 8, 3);
  for (EvictionPolicy policy :
       {EvictionPolicy::kWedgeAdmission, EvictionPolicy::kDegreePriority,
        EvictionPolicy::kLru, EvictionPolicy::kRandom}) {
    LazyProjectionOptions options;
    options.policy = policy;
    options.memory_budget_bytes = 4096;
    LazyProjection lazy(g, options);
    Rng rng(7);
    for (int access = 0; access < 300; ++access) {
      lazy.Neighborhood(static_cast<EdgeId>(rng.UniformInt(g.num_edges())));
      EXPECT_LE(lazy.stats().bytes_used, options.memory_budget_bytes);
      EXPECT_LE(lazy.stats().peak_bytes, options.memory_budget_bytes);
      EXPECT_GE(lazy.stats().peak_bytes, lazy.stats().bytes_used);
    }
  }
}

TEST(LazyProjectionTest, LruKeepsHotEntry) {
  const Hypergraph g = testing::RandomHypergraph(30, 50, 2, 6, 4);
  LazyProjectionOptions options;
  options.policy = EvictionPolicy::kLru;
  options.memory_budget_bytes = 3000;
  LazyProjection lazy(g, options);
  // Touch edge 0 between every other access; it should stay cached, i.e.
  // at most one computation of edge 0's neighborhood beyond the first few.
  lazy.Neighborhood(0);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    lazy.Neighborhood(static_cast<EdgeId>(rng.UniformInt(g.num_edges())));
    lazy.Neighborhood(0);
  }
  // Edge 0 is re-accessed 100 times; nearly all must be hits.
  EXPECT_GT(lazy.stats().memo_hits, 90u);
}

/// A star hypergraph: edge 0 overlaps every leaf (high projected degree —
/// the high-wedge hub), leaves overlap only edge 0.
Hypergraph MakeStar(int num_leaves) {
  std::vector<std::vector<NodeId>> edges;
  edges.push_back({});
  for (NodeId v = 0; v < static_cast<NodeId>(num_leaves); ++v) {
    edges[0].push_back(v);
  }
  for (NodeId v = 0; v < static_cast<NodeId>(num_leaves); ++v) {
    edges.push_back({v, static_cast<NodeId>(100 + v)});
  }
  return MakeHypergraph(edges).value();
}

TEST(LazyProjectionTest, DegreePolicyPrefersHighDegree) {
  auto g = MakeStar(20);
  LazyProjectionOptions options;
  options.policy = EvictionPolicy::kDegreePriority;
  // Enough for the hub's 20-neighbor list but not for everything.
  options.memory_budget_bytes = 600;
  LazyProjection lazy(g, options);
  lazy.Neighborhood(0);
  // Churn through the leaves.
  for (EdgeId e = 1; e <= 20; ++e) lazy.Neighborhood(e);
  const uint64_t computations = lazy.stats().computations;
  // The hub must still be cached: accessing it again is a hit.
  lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().computations, computations);
  EXPECT_GT(lazy.stats().memo_hits, 0u);
}

TEST(LazyProjectionTest, DeclinedNewcomerEvictsNothing) {
  // Hub (projected degree 20), leaves, and a mid edge over 10 private
  // leaf nodes (projected degree 10). Budget fits hub + one leaf
  // exactly; the mid newcomer outranks the leaf but cannot fit even
  // after evicting it — it must be declined WITHOUT evicting the leaf,
  // not evict-then-decline.
  std::vector<std::vector<NodeId>> edges;
  edges.push_back({});
  for (NodeId v = 0; v < 20; ++v) edges[0].push_back(v);
  for (NodeId v = 0; v < 20; ++v) {
    edges.push_back({v, static_cast<NodeId>(100 + v)});
  }
  std::vector<NodeId> mid;
  for (NodeId v = 100; v < 110; ++v) mid.push_back(v);
  edges.push_back(mid);  // edge 21
  auto g = MakeHypergraph(edges).value();

  LazyProjectionOptions options;
  options.policy = EvictionPolicy::kDegreePriority;
  // hub entry = 20*8+64 = 224, leaf = 2*8+64 = 80, mid = 10*8+64 = 144.
  options.memory_budget_bytes = 304;  // hub + one leaf, nothing to spare
  LazyProjection lazy(g, options);
  lazy.Neighborhood(0);   // hub admitted (224)
  lazy.Neighborhood(1);   // leaf admitted (304 total)
  ASSERT_EQ(lazy.stats().bytes_used, 304u);
  lazy.Neighborhood(21);  // mid: rank 10 > leaf's 2, but 80 freed < 144
  EXPECT_EQ(lazy.stats().evictions, 0u);
  const uint64_t computations = lazy.stats().computations;
  lazy.Neighborhood(1);   // the leaf must still be resident
  EXPECT_EQ(lazy.stats().computations, computations);
}

TEST(LazyProjectionTest, WedgeAdmissionPrefersHighWedgeHubs) {
  auto g = MakeStar(20);
  const ProjectedDegrees degrees = ComputeProjectedDegrees(g);
  ASSERT_EQ(degrees.degree[0], 20u);  // the hub touches every leaf
  LazyProjectionOptions options;
  options.policy = EvictionPolicy::kWedgeAdmission;
  options.memory_budget_bytes = 600;
  LazyProjection lazy =
      LazyProjection::Create(g, options, &degrees).value();
  // Leaves first: they fill the memo as low-score residents.
  for (EdgeId e = 1; e <= 20; ++e) lazy.Neighborhood(e);
  // The hub's score (degree 20 × a 20-node sweep) outranks every leaf
  // (degree 1 × a 2-node sweep): admitting it evicts leaves.
  lazy.Neighborhood(0);
  const uint64_t after_hub = lazy.stats().computations;
  lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().computations, after_hub)
      << "hub was not admitted over the resident leaves";
  EXPECT_GT(lazy.stats().evictions, 0u);
  // And churning the leaves again cannot displace it: low-score leaves
  // are declined (recomputed), the hub stays a hit.
  for (EdgeId e = 1; e <= 20; ++e) lazy.Neighborhood(e);
  const uint64_t after_churn = lazy.stats().computations;
  EXPECT_GT(after_churn, after_hub);
  lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().computations, after_churn)
      << "leaf churn displaced the high-wedge hub";
}

TEST(ConcurrentLazyProjectionTest, ExactUnderConcurrencyAndBudget) {
  const Hypergraph g = testing::RandomHypergraph(50, 90, 2, 7, 11);
  const ProjectedGraph reference = ProjectedGraph::Build(g).value();
  const ProjectedDegrees degrees = ComputeProjectedDegrees(g);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 8192;
  auto lazy =
      ConcurrentLazyProjection::Create(g, degrees, options).value();
  ParallelWorkers(4, [&](size_t worker) {
    NeighborhoodBuilder builder(g.num_edges());
    std::vector<Neighbor> out;
    LazyProjection::Stats local;
    Rng rng(100 + worker);
    for (int access = 0; access < 300; ++access) {
      const EdgeId e = static_cast<EdgeId>(rng.UniformInt(g.num_edges()));
      lazy->Neighborhood(e, builder, &out, &local);
      ASSERT_EQ(out.size(), reference.neighbors(e).size());
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i].edge, reference.neighbors(e)[i].edge);
        ASSERT_EQ(out[i].weight, reference.neighbors(e)[i].weight);
      }
    }
  });
  const LazyProjection::Stats shared = lazy->shared_stats();
  EXPECT_LE(shared.bytes_used, options.memory_budget_bytes);
  EXPECT_LE(shared.peak_bytes, options.memory_budget_bytes);
}

// ---------------------------------------------------------------------
// Engine-level ProjectionPolicy contract.
// ---------------------------------------------------------------------

struct EngineCase {
  Algorithm algorithm;
  size_t num_threads;
};

class ProjectionPolicyEquivalence
    : public ::testing::TestWithParam<EngineCase> {};

TEST_P(ProjectionPolicyEquivalence, LazyAndAutoMatchMaterializedBitForBit) {
  const auto [algorithm, num_threads] = GetParam();
  const Hypergraph g = testing::RandomHypergraph(60, 120, 2, 7, 21);

  EngineOptions options;
  options.algorithm = algorithm;
  options.num_threads = num_threads;
  options.num_samples = 200;
  options.seed = 97;

  options.projection = ProjectionPolicy::kMaterialized;
  const MotifEngine eager = MotifEngine::Create(g, options).value();
  const EngineResult reference = eager.Count(options).value();
  EXPECT_EQ(reference.stats.projection_policy,
            ProjectionPolicy::kMaterialized);
  EXPECT_GT(reference.stats.projection_bytes, 0u);

  // kLazy, under a tiny budget that forces evictions mid-run.
  options.projection = ProjectionPolicy::kLazy;
  options.memory_budget = 4096;
  const MotifEngine lazy = MotifEngine::Create(g, options).value();
  EXPECT_FALSE(lazy.materialized());
  const EngineResult bounded = lazy.Count(options).value();
  EXPECT_EQ(bounded.stats.projection_policy, ProjectionPolicy::kLazy);
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(reference.counts[t], bounded.counts[t]) << "motif " << t;
  }

  // kAuto with a budget below the estimated footprint resolves to lazy and
  // still matches.
  options.projection = ProjectionPolicy::kAuto;
  options.memory_budget = 1;
  const MotifEngine chosen = MotifEngine::Create(g, options).value();
  EXPECT_FALSE(chosen.materialized());
  const EngineResult auto_result = chosen.Count(options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(reference.counts[t], auto_result.counts[t])
        << "motif " << t;
  }

  // kAuto with no budget (0 = unbounded) materializes — the status quo.
  options.memory_budget = 0;
  const MotifEngine unbounded = MotifEngine::Create(g, options).value();
  EXPECT_TRUE(unbounded.materialized());
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndThreads, ProjectionPolicyEquivalence,
    ::testing::Values(EngineCase{Algorithm::kEdgeSample, 1},
                      EngineCase{Algorithm::kEdgeSample, 2},
                      EngineCase{Algorithm::kEdgeSample, 0},
                      EngineCase{Algorithm::kLinkSample, 1},
                      EngineCase{Algorithm::kLinkSample, 2},
                      EngineCase{Algorithm::kLinkSample, 0}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      const char* name = info.param.algorithm == Algorithm::kEdgeSample
                             ? "MochyA"
                             : "MochyAPlus";
      return std::string(name) + "Threads" +
             std::to_string(info.param.num_threads);
    });

TEST(ProjectionPolicyTest, TinyBudgetEvictsAndStaysExact) {
  const Hypergraph g = testing::RandomHypergraph(60, 120, 2, 7, 23);
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.num_samples = 300;
  options.seed = 5;
  options.projection = ProjectionPolicy::kLazy;
  options.memory_budget = 2048;
  const MotifEngine lazy = MotifEngine::Create(g, options).value();
  const EngineResult bounded = lazy.Count(options).value();
  EXPECT_GT(bounded.stats.lazy_evictions, 0u) << "budget too large to test";
  options.projection = ProjectionPolicy::kMaterialized;
  const EngineResult reference =
      MotifEngine::Create(g, options).value().Count(options).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(reference.counts[t], bounded.counts[t]) << "motif " << t;
  }
}

TEST(ProjectionPolicyTest, ExactOnLazyEngineIsRejected) {
  const Hypergraph g = testing::RandomHypergraph(30, 50, 2, 6, 29);
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.projection = ProjectionPolicy::kLazy;
  const MotifEngine lazy = MotifEngine::Create(g, options).value();
  EngineOptions exact = options;
  exact.algorithm = Algorithm::kExact;
  auto counted = lazy.Count(exact);
  ASSERT_FALSE(counted.ok());
  EXPECT_EQ(counted.status().code(), StatusCode::kInvalidArgument);
  EngineOptions variance = options;
  variance.estimate_variance = true;
  EXPECT_FALSE(lazy.Count(variance).ok());
}

TEST(ProjectionPolicyTest, ExactUnderAutoFallsBackExplicitLazyIsRejected) {
  const Hypergraph g = testing::RandomHypergraph(30, 50, 2, 6, 29);
  // kAuto: exact counting falls back to materialized, budget or not.
  EngineOptions options;
  options.algorithm = Algorithm::kExact;
  options.projection = ProjectionPolicy::kAuto;
  options.memory_budget = 1;  // far below the footprint
  const MotifEngine engine = MotifEngine::Create(g, options).value();
  EXPECT_TRUE(engine.materialized());
  EXPECT_TRUE(engine.Count(options).ok());
  // Explicit kLazy must not silently materialize behind the budget.
  options.projection = ProjectionPolicy::kLazy;
  auto rejected = MotifEngine::Create(g, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProjectionPolicyTest, RunStatsSurfaceLazyCounters) {
  const Hypergraph g = testing::RandomHypergraph(60, 120, 2, 7, 31);
  const uint64_t materialized_bytes =
      ProjectedGraph::Build(g).value().MemoryBytes();
  EngineOptions options;
  options.algorithm = Algorithm::kLinkSample;
  options.num_samples = 250;
  options.projection = ProjectionPolicy::kLazy;
  options.memory_budget = materialized_bytes / 8;
  const MotifEngine engine = MotifEngine::Create(g, options).value();
  const EngineStats stats = engine.Count(options).value().stats;
  EXPECT_EQ(stats.projection_policy, ProjectionPolicy::kLazy);
  EXPECT_GT(stats.lazy_recomputes, 0u);
  EXPECT_GT(stats.lazy_memo_hits + stats.lazy_recomputes, 0u);
  EXPECT_GE(stats.lazy_hit_rate, 0.0);
  EXPECT_LE(stats.lazy_hit_rate, 1.0);
  EXPECT_GT(stats.projection_bytes, 0u);
  EXPECT_GE(stats.projection_peak_bytes, stats.projection_bytes);
  // The acceptance shape: lazy peak strictly below the materialized
  // footprint, and the memo share of it within the configured budget.
  EXPECT_LT(stats.projection_peak_bytes, materialized_bytes);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("projection=lazy"), std::string::npos);
  EXPECT_NE(text.find("hit-rate"), std::string::npos);
}

TEST(ProjectionPolicyTest, BatchForwardsPerItemPoliciesAndStats) {
  const Hypergraph a = testing::RandomHypergraph(50, 100, 2, 7, 41);
  const Hypergraph b = testing::RandomHypergraph(50, 100, 2, 7, 43);

  EngineOptions eager;
  eager.algorithm = Algorithm::kLinkSample;
  eager.num_samples = 150;
  eager.seed = 11;
  eager.projection = ProjectionPolicy::kMaterialized;
  EngineOptions lazy = eager;
  lazy.projection = ProjectionPolicy::kLazy;
  lazy.memory_budget = 16384;

  BatchRunner runner(BatchOptions{.num_threads = 2});
  runner.Add(a, eager, "a-materialized");
  runner.Add(b, lazy, "b-lazy");
  const BatchResult batched = runner.Run();
  ASSERT_TRUE(batched.all_ok()) << batched.first_error().ToString();
  EXPECT_EQ(batched.items[0].stats.projection_policy,
            ProjectionPolicy::kMaterialized);
  EXPECT_EQ(batched.items[1].stats.projection_policy,
            ProjectionPolicy::kLazy);
  EXPECT_GT(batched.items[1].stats.lazy_recomputes, 0u);

  // Bit-identical to the same items run alone, policy included.
  const EngineResult alone_a =
      MotifEngine::Create(a, eager).value().Count(eager).value();
  const EngineResult alone_b =
      MotifEngine::Create(b, lazy).value().Count(lazy).value();
  for (int t = 1; t <= kNumHMotifs; ++t) {
    EXPECT_DOUBLE_EQ(batched.items[0].counts[t], alone_a.counts[t]);
    EXPECT_DOUBLE_EQ(batched.items[1].counts[t], alone_b.counts[t]);
  }
}

TEST(ProjectionPolicyTest, ParseHelpersRoundTrip) {
  EXPECT_EQ(ParseProjectionPolicy("materialized").value(),
            ProjectionPolicy::kMaterialized);
  EXPECT_EQ(ParseProjectionPolicy("eager").value(),
            ProjectionPolicy::kMaterialized);
  EXPECT_EQ(ParseProjectionPolicy("lazy").value(), ProjectionPolicy::kLazy);
  EXPECT_EQ(ParseProjectionPolicy("auto").value(), ProjectionPolicy::kAuto);
  EXPECT_FALSE(ParseProjectionPolicy("mmap").ok());
  for (ProjectionPolicy policy :
       {ProjectionPolicy::kMaterialized, ProjectionPolicy::kLazy,
        ProjectionPolicy::kAuto}) {
    EXPECT_EQ(ParseProjectionPolicy(ProjectionPolicyName(policy)).value(),
              policy);
  }

  EXPECT_EQ(ParseMemoryBudget("0").value(), 0u);
  EXPECT_EQ(ParseMemoryBudget("12345").value(), 12345u);
  EXPECT_EQ(ParseMemoryBudget("64K").value(), 64ull << 10);
  EXPECT_EQ(ParseMemoryBudget("256M").value(), 256ull << 20);
  EXPECT_EQ(ParseMemoryBudget("256MB").value(), 256ull << 20);
  EXPECT_EQ(ParseMemoryBudget("1g").value(), 1ull << 30);
  EXPECT_FALSE(ParseMemoryBudget("").ok());
  EXPECT_FALSE(ParseMemoryBudget("M").ok());
  EXPECT_FALSE(ParseMemoryBudget("12Q").ok());
  EXPECT_FALSE(ParseMemoryBudget("12MBx").ok());
  EXPECT_FALSE(ParseMemoryBudget("99999999999999999999999").ok());
}

TEST(ProjectionPolicyTest, EstimateTracksActualFootprint) {
  const Hypergraph g = testing::RandomHypergraph(60, 120, 2, 7, 47);
  const uint64_t actual = ProjectedGraph::Build(g).value().MemoryBytes();
  const uint64_t estimate =
      EstimateProjectionBytes(ComputeProjectedDegrees(g));
  // The estimate reconstructs the CSR + pair-table sizing exactly; only
  // container slack can differ.
  EXPECT_GT(estimate, 0u);
  EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(actual),
              0.05 * static_cast<double>(actual));
}

}  // namespace
}  // namespace mochy
