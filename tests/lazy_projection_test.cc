#include "hypergraph/lazy_projection.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "hypergraph/projection.h"
#include "tests/test_util.h"

namespace mochy {
namespace {

void ExpectSameNeighborhood(const std::vector<Neighbor>& got,
                            std::span<const Neighbor> expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].edge, expected[i].edge);
    EXPECT_EQ(got[i].weight, expected[i].weight);
  }
}

class LazyProjectionPolicySweep
    : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(LazyProjectionPolicySweep, AlwaysReturnsExactNeighborhoods) {
  const Hypergraph g = testing::RandomHypergraph(40, 70, 1, 6, 13);
  const ProjectedGraph reference = ProjectedGraph::Build(g).value();
  LazyProjectionOptions options;
  options.policy = GetParam();
  options.memory_budget_bytes = 2048;  // forces evictions
  LazyProjection lazy(g, options);
  Rng rng(3);
  for (int access = 0; access < 500; ++access) {
    const EdgeId e = static_cast<EdgeId>(rng.UniformInt(g.num_edges()));
    ExpectSameNeighborhood(lazy.Neighborhood(e), reference.neighbors(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LazyProjectionPolicySweep,
                         ::testing::Values(EvictionPolicy::kDegreePriority,
                                           EvictionPolicy::kLru,
                                           EvictionPolicy::kRandom));

TEST(LazyProjectionTest, ZeroBudgetNeverMemoizes) {
  const Hypergraph g = testing::RandomHypergraph(20, 30, 1, 5, 1);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 0;
  LazyProjection lazy(g, options);
  for (int i = 0; i < 10; ++i) lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().memo_hits, 0u);
  EXPECT_EQ(lazy.stats().computations, 10u);
  EXPECT_EQ(lazy.stats().bytes_used, 0u);
}

TEST(LazyProjectionTest, LargeBudgetComputesEachOnce) {
  const Hypergraph g = testing::RandomHypergraph(20, 30, 1, 5, 2);
  LazyProjectionOptions options;
  options.memory_budget_bytes = 64 << 20;
  LazyProjection lazy(g, options);
  for (int round = 0; round < 3; ++round) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) lazy.Neighborhood(e);
  }
  EXPECT_EQ(lazy.stats().computations, g.num_edges());
  EXPECT_EQ(lazy.stats().memo_hits, 2u * g.num_edges());
  EXPECT_EQ(lazy.stats().evictions, 0u);
}

TEST(LazyProjectionTest, BudgetIsRespected) {
  const Hypergraph g = testing::RandomHypergraph(40, 80, 2, 8, 3);
  for (EvictionPolicy policy :
       {EvictionPolicy::kDegreePriority, EvictionPolicy::kLru,
        EvictionPolicy::kRandom}) {
    LazyProjectionOptions options;
    options.policy = policy;
    options.memory_budget_bytes = 4096;
    LazyProjection lazy(g, options);
    Rng rng(7);
    for (int access = 0; access < 300; ++access) {
      lazy.Neighborhood(static_cast<EdgeId>(rng.UniformInt(g.num_edges())));
      EXPECT_LE(lazy.stats().bytes_used, options.memory_budget_bytes);
    }
  }
}

TEST(LazyProjectionTest, LruKeepsHotEntry) {
  const Hypergraph g = testing::RandomHypergraph(30, 50, 2, 6, 4);
  LazyProjectionOptions options;
  options.policy = EvictionPolicy::kLru;
  options.memory_budget_bytes = 3000;
  LazyProjection lazy(g, options);
  // Touch edge 0 between every other access; it should stay cached, i.e.
  // at most one computation of edge 0's neighborhood beyond the first few.
  lazy.Neighborhood(0);
  const uint64_t before = lazy.stats().computations;
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    lazy.Neighborhood(static_cast<EdgeId>(rng.UniformInt(g.num_edges())));
    lazy.Neighborhood(0);
  }
  // Edge 0 is re-accessed 100 times; nearly all must be hits.
  EXPECT_GT(lazy.stats().memo_hits, 90u);
  (void)before;
}

TEST(LazyProjectionTest, DegreePolicyPrefersHighDegree) {
  // Star-ish hypergraph: edge 0 overlaps everyone (high projected degree),
  // others overlap only edge 0.
  std::vector<std::vector<NodeId>> edges;
  edges.push_back({});
  for (NodeId v = 0; v < 20; ++v) edges[0].push_back(v);
  for (NodeId v = 0; v < 20; ++v) {
    edges.push_back({v, static_cast<NodeId>(100 + v)});
  }
  auto g = MakeHypergraph(edges).value();
  LazyProjectionOptions options;
  options.policy = EvictionPolicy::kDegreePriority;
  // Enough for the hub's 20-neighbor list but not for everything.
  options.memory_budget_bytes = 600;
  LazyProjection lazy(g, options);
  lazy.Neighborhood(0);
  // Churn through the leaves.
  for (EdgeId e = 1; e <= 20; ++e) lazy.Neighborhood(e);
  const uint64_t computations = lazy.stats().computations;
  // The hub must still be cached: accessing it again is a hit.
  lazy.Neighborhood(0);
  EXPECT_EQ(lazy.stats().computations, computations);
  EXPECT_GT(lazy.stats().memo_hits, 0u);
}

}  // namespace
}  // namespace mochy
